"""View-change reconciliation: stragglers catch up via the new leader.

Scenario: a replica is partitioned while the leader keeps committing
(quorum holds without it), then heals just as the leader dies.  The new
leader must (a) adopt the full committed log and (b) re-replicate the
missing suffix to the straggler before serving.
"""

import pytest

from repro import Cluster, ClusterConfig, Role
from repro.faults import FaultSchedule

MS = 1_000_000


@pytest.mark.parametrize("protocol", ["mu", "p4ce"])
def test_straggler_catches_up_across_view_change(protocol):
    cluster = Cluster.build(ClusterConfig(num_replicas=4, protocol=protocol,
                                          seed=77))
    cluster.await_ready()
    injector = FaultSchedule(cluster).injector
    committed = []

    def commit_batch(prefix, count):
        done = []
        for i in range(count):
            cluster.propose(prefix + bytes([i]),
                            lambda e: (done.append(e), committed.append(e.payload)))
        ok = cluster.sim.run_until(lambda: len(done) >= count,
                                   timeout=500 * MS)
        assert ok
        return done

    # Phase 1: everyone healthy.
    commit_batch(b"A", 15)
    # Phase 2: partition replica 4; quorum (0 + any 2 of 1,2,3) holds.
    injector.partition_host(4)
    cluster.run_for(2 * MS)
    commit_batch(b"B", 15)
    straggler = cluster.members[4]
    full_log_end = cluster.members[0].log.next_offset
    assert straggler.log.next_offset < full_log_end  # it really missed data
    # Phase 3: heal the straggler, kill the leader.
    injector.heal_host(4)
    cluster.run_for(1 * MS)
    cluster.kill_app(0)
    ok = cluster.sim.run_until(
        lambda: cluster.leader is not None and cluster.leader.node_id == 1,
        timeout=500 * MS)
    assert ok
    # Phase 4: the new leader serves; the straggler is re-replicated.
    commit_batch(b"C", 5)
    cluster.sim.run_until(
        lambda: len(straggler.applied) >= 35, timeout=500 * MS)
    cluster.run_for(5 * MS)

    # Every live machine applied every committed payload, in order.
    live = [m for m in cluster.members.values() if m.role is not Role.STOPPED]
    assert straggler in live
    for member in live:
        payloads = [p for _o, _e, p in member.applied]
        assert payloads == committed, \
            f"machine {member.node_id}: {len(payloads)} vs {len(committed)}"


def test_new_leader_adopts_from_longest_log():
    """The new leader itself may be behind: it must adopt the longer log
    from a peer before serving (step 2 of the takeover)."""
    cluster = Cluster.build(ClusterConfig(num_replicas=4, protocol="mu",
                                          seed=78))
    cluster.await_ready()
    injector = FaultSchedule(cluster).injector
    done = []
    for i in range(10):
        cluster.propose(b"base" + bytes([i]), done.append)
    cluster.sim.run_until(lambda: len(done) >= 10, timeout=200 * MS)
    # Partition the *future leader* (machine 1); keep committing.
    injector.partition_host(1)
    cluster.run_for(2 * MS)
    done2 = []
    for i in range(10):
        cluster.propose(b"while-1-out" + bytes([i]), done2.append)
    cluster.sim.run_until(lambda: len(done2) >= 10, timeout=200 * MS)
    behind = cluster.members[1].log.next_offset
    ahead = cluster.members[2].log.next_offset
    assert behind < ahead
    # Heal 1, then kill the leader: 1 takes over despite being behind.
    injector.heal_host(1)
    cluster.run_for(2 * MS)
    cluster.kill_app(0)
    ok = cluster.sim.run_until(
        lambda: cluster.leader is not None and cluster.leader.node_id == 1,
        timeout=500 * MS)
    assert ok
    new_leader = cluster.members[1]
    # It adopted the suffix it had missed...
    assert new_leader.log.next_offset >= ahead
    post = []
    cluster.propose(b"post-takeover", post.append)
    cluster.sim.run_until(lambda: bool(post), timeout=200 * MS)
    cluster.run_for(5 * MS)
    # ... and its applied history contains everything ever committed.
    payloads = [p for _o, _e, p in new_leader.applied]
    for entry in done + done2 + post:
        assert entry.payload in payloads
