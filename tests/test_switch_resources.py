"""Tests for the Tofino stage-budget model and P4CE's declared layout."""

import pytest

from repro.p4ce.group import CommunicationGroup
from repro.switch.resources import (
    PipelineLayout,
    ResourceError,
    TOFINO1_STAGES,
    p4ce_layout,
)


class TestPipelineLayout:
    def test_stage_out_of_range_rejected(self):
        layout = PipelineLayout()
        layout.place("t", "table", "ingress", TOFINO1_STAGES)
        with pytest.raises(ResourceError):
            layout.validate()

    def test_backward_dependency_rejected(self):
        layout = PipelineLayout()
        layout.place("producer", "register", "ingress", 5)
        layout.place("consumer", "alu", "ingress", 3, ("producer",))
        with pytest.raises(ResourceError):
            layout.validate()

    def test_same_stage_dependency_rejected(self):
        layout = PipelineLayout()
        layout.place("producer", "register", "ingress", 3)
        layout.place("consumer", "alu", "ingress", 3, ("producer",))
        with pytest.raises(ResourceError):
            layout.validate()

    def test_cross_gress_dependency_allowed(self):
        layout = PipelineLayout()
        layout.place("ing", "table", "ingress", 11)
        layout.place("egr", "table", "egress", 0, ("ing",))
        layout.validate()

    def test_unplaced_dependency_rejected(self):
        layout = PipelineLayout()
        layout.place("consumer", "alu", "ingress", 3, ("ghost",))
        with pytest.raises(ResourceError):
            layout.validate()

    def test_double_placement_rejected(self):
        layout = PipelineLayout()
        layout.place("t", "table", "ingress", 0)
        with pytest.raises(ResourceError):
            layout.place("t", "table", "ingress", 1)

    def test_bad_kind_and_gress_rejected(self):
        layout = PipelineLayout()
        with pytest.raises(ResourceError):
            layout.place("x", "widget", "ingress", 0)
        with pytest.raises(ResourceError):
            layout.place("y", "table", "sideways", 0)


class TestP4ceLayout:
    def test_fits_tofino1_with_8_replica_slots(self):
        """The shipped program (8 credit registers) must be placeable --
        this is the "most of them cannot be deployed in hardware" gate."""
        layout = p4ce_layout(CommunicationGroup.MAX_REPLICAS)
        layout.validate()
        assert layout.stages_used <= TOFINO1_STAGES

    def test_more_replica_slots_than_stages_rejected(self):
        """Each credit register consumes a stage of the min-fold chain:
        the ASIC bounds how many replicas one group can track."""
        layout = p4ce_layout(16)
        with pytest.raises(ResourceError):
            layout.validate()

    def test_credit_chain_is_sequential(self):
        layout = p4ce_layout(4)
        stages = [layout.objects[f"MinCredit[{i}]"].stage for i in range(4)]
        assert stages == sorted(stages)
        assert len(set(stages)) == 4

    def test_numrecv_after_credit_chain(self):
        layout = p4ce_layout(8)
        numrecv = layout.objects["NumRecv"].stage
        last_credit = layout.objects["MinCredit[7]"].stage
        assert numrecv > last_credit

    def test_occupancy_accounting(self):
        layout = p4ce_layout(2)
        ingress = layout.stage_occupancy("ingress")
        egress = layout.stage_occupancy("egress")
        assert sum(ingress) == len(layout.objects) - 2
        assert sum(egress) == 2
