"""Unit tests for addresses and L2-L4 header codecs."""

import pytest

from repro.net import (
    EthernetHeader,
    Ipv4Address,
    Ipv4Header,
    MacAddress,
    UdpHeader,
)


class TestMacAddress:
    def test_parse_format_roundtrip(self):
        mac = MacAddress.parse("02:00:00:00:00:2a")
        assert str(mac) == "02:00:00:00:00:2a"
        assert mac.value == 0x02_00_00_00_00_2A

    def test_bytes_roundtrip(self):
        mac = MacAddress(0xAABBCCDDEEFF)
        assert MacAddress.from_bytes(mac.to_bytes()) == mac

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)

    def test_broadcast(self):
        assert str(MacAddress.broadcast()) == "ff:ff:ff:ff:ff:ff"

    def test_equality_and_hash(self):
        assert MacAddress(5) == MacAddress(5)
        assert hash(MacAddress(5)) == hash(MacAddress(5))
        assert MacAddress(5) != MacAddress(6)


class TestIpv4Address:
    def test_parse_format_roundtrip(self):
        ip = Ipv4Address.parse("10.0.0.254")
        assert str(ip) == "10.0.0.254"
        assert ip.value == 0x0A0000FE

    def test_bad_octet_rejected(self):
        with pytest.raises(ValueError):
            Ipv4Address.parse("10.0.0.256")

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            Ipv4Address.parse("10.0.0")

    def test_bytes_roundtrip(self):
        ip = Ipv4Address.parse("192.168.1.1")
        assert Ipv4Address.from_bytes(ip.to_bytes()) == ip


class TestEthernetHeader:
    def test_roundtrip(self):
        header = EthernetHeader(MacAddress(1), MacAddress(2), 0x0800)
        parsed = EthernetHeader.unpack(header.pack())
        assert parsed.dst == MacAddress(1)
        assert parsed.src == MacAddress(2)
        assert parsed.ethertype == 0x0800

    def test_size_is_14(self):
        header = EthernetHeader(MacAddress(1), MacAddress(2))
        assert len(header.pack()) == EthernetHeader.SIZE == 14

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            EthernetHeader.unpack(b"\x00" * 10)

    def test_copy_is_independent(self):
        header = EthernetHeader(MacAddress(1), MacAddress(2))
        clone = header.copy()
        clone.dst = MacAddress(9)
        assert header.dst == MacAddress(1)


class TestIpv4Header:
    def test_roundtrip(self):
        header = Ipv4Header(Ipv4Address.parse("10.0.0.1"),
                            Ipv4Address.parse("10.0.0.2"),
                            protocol=17, total_length=120, ttl=63)
        parsed = Ipv4Header.unpack(header.pack())
        assert str(parsed.src) == "10.0.0.1"
        assert str(parsed.dst) == "10.0.0.2"
        assert parsed.protocol == 17
        assert parsed.total_length == 120
        assert parsed.ttl == 63

    def test_size_is_20(self):
        header = Ipv4Header(Ipv4Address(1), Ipv4Address(2))
        assert len(header.pack()) == Ipv4Header.SIZE == 20

    def test_checksum_verified_on_unpack(self):
        header = Ipv4Header(Ipv4Address(1), Ipv4Address(2))
        data = bytearray(header.pack())
        data[15] ^= 0xFF  # corrupt a source-address byte
        with pytest.raises(ValueError):
            Ipv4Header.unpack(bytes(data))

    def test_checksum_of_packed_header_is_zero(self):
        header = Ipv4Header(Ipv4Address.parse("10.0.0.1"),
                            Ipv4Address.parse("10.0.0.254"))
        assert Ipv4Header.checksum(header.pack()) == 0


class TestUdpHeader:
    def test_roundtrip(self):
        header = UdpHeader(4791, 4791, length=108)
        parsed = UdpHeader.unpack(header.pack())
        assert parsed.src_port == 4791
        assert parsed.dst_port == 4791
        assert parsed.length == 108

    def test_size_is_8(self):
        assert len(UdpHeader(1, 2).pack()) == UdpHeader.SIZE == 8
