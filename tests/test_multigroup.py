"""Multi-group (multi-tenant) provisioning on one simulated Tofino.

Covers the sharding tentpole's switch-side guarantees:

* G communication groups co-resident on ONE switch (tenant mode), each
  serving its own consensus group;
* per-group NumRecv / MinCredit register isolation, including across the
  256-PSN wrap (cross-group aliases raise IndexError);
* provisioning past the Tofino budget raises the typed
  :class:`SwitchResourceError` inside the switch and surfaces to the
  leader as a CM reject -- the cluster degrades to the direct plane
  instead of crashing.
"""

import pytest

from repro import Cluster, ClusterConfig, ShardedCluster, SwitchFabric, params
from repro.switch import ResourceBudget, SwitchResourceError

MS = 1_000_000


@pytest.fixture(scope="module")
def tenant_pair():
    """Two consensus groups provisioned on one switch fabric.

    Module-scoped: the register-isolation test scribbles into live
    registers, so it must run AFTER the commit-flow test (tests in this
    file are ordered accordingly).
    """
    sharded = ShardedCluster(2, mode="tenant", num_replicas=2,
                             protocol="p4ce", seed=17)
    leaders = sharded.await_ready()
    return sharded, leaders


class TestTenantProvisioning:
    def test_two_groups_on_one_switch(self, tenant_pair):
        sharded, leaders = tenant_pair
        fabric = sharded.fabrics[0]
        assert len(sharded.fabrics) == 1  # ONE switch
        assert all(leader.is_leader for leader in leaders)
        groups = fabric.control_plane.groups
        assert len(groups) == 2
        assert sorted(g.group_index for g in groups.values()) == [0, 1]
        # Distinct leaders, distinct broadcast QPNs.
        leader_ips = {g.leader_ip.value for g in groups.values()}
        assert len(leader_ips) == 2
        bcast = {g.bcast_qpn for g in groups.values()}
        assert len(bcast) == 2

    def test_budget_accounts_both_tenants(self, tenant_pair):
        sharded, _ = tenant_pair
        snap = sharded.fabrics[0].resource_snapshot()
        assert snap["communication_groups"]["used"] == 2
        assert snap["multicast_group_ids"]["used"] == 2
        assert snap["numrecv_windows"]["used"] == 2
        assert snap["credit_windows"]["used"] == 2
        # One broadcast entry per group, one aggr + egress entry per
        # replica connection (2 replicas each).
        assert snap["bcast_entries"]["used"] == 2
        assert snap["aggr_entries"]["used"] == 4
        assert snap["egress_conn_entries"]["used"] == 4
        # 1 leader + 2 replicas per group.
        assert snap["endpoint_ids"]["used"] == 6

    def test_both_groups_commit(self, tenant_pair):
        sharded, _ = tenant_pair
        done = {0: 0, 1: 0}
        for shard in range(2):
            def on_commit(entry, _shard=shard):
                if entry.committed:
                    done[_shard] += 1
            sharded.propose_on(shard, b"x" * 64, on_commit)
        sharded.run_for(2 * MS)
        assert done[0] >= 1 and done[1] >= 1
        assert sharded.per_shard_commits()[0] >= 1
        assert sharded.total_commits() >= 2

    def test_keyspace_routing_is_stable(self, tenant_pair):
        sharded, _ = tenant_pair
        shards = [sharded.shard_of(f"key-{i}") for i in range(64)]
        assert set(shards) == {0, 1}  # both shards get keys
        # crc32 routing is a pure function -- identical on re-query.
        assert shards == [sharded.shard_of(f"key-{i}") for i in range(64)]
        assert sharded.shard_of(12345) == sharded.shard_of(12345)

    # -- register isolation (mutates live registers: keep this last) ---------

    def test_numrecv_isolation_across_psn_wrap(self, tenant_pair):
        sharded, _ = tenant_pair
        fabric = sharded.fabrics[0]
        g0, g1 = (fabric.control_plane.groups[i] for i in (0, 1))
        numrecv = fabric.program.numrecv
        w0 = g0.numrecv_window(numrecv)
        w1 = g1.numrecv_window(numrecv)
        assert len(w0) == len(w1) == params.NUMRECV_SLOTS
        # PSN p and p + 256 alias the same slot *within* the group...
        wrap_psn = params.NUMRECV_SLOTS + 5
        assert g1.numrecv_slot(wrap_psn) == g1.numrecv_base + 5
        # ...and never reach beyond it: the wrapped slot of group 0 stays
        # inside group 0's window even though group 1's base is next door.
        before = [w1.cp_read(i) for i in range(len(w1))]
        w0.cp_fill(9)
        w0.cp_write(wrap_psn % params.NUMRECV_SLOTS, 13)
        assert [w1.cp_read(i) for i in range(len(w1))] == before
        # Cross-group aliasing through a window is an error, not a write.
        with pytest.raises(IndexError):
            w0.cp_read(params.NUMRECV_SLOTS)
        with pytest.raises(IndexError):
            w0.cp_write(-1, 1)

    def test_credit_isolation_between_groups(self, tenant_pair):
        sharded, _ = tenant_pair
        fabric = sharded.fabrics[0]
        g0, g1 = (fabric.control_plane.groups[i] for i in (0, 1))
        for register in fabric.program.credits:
            c0 = g0.credit_window(register)
            c1 = g1.credit_window(register)
            assert len(c0) == len(c1) == 1
            before = c1.cp_read(0)
            c0.cp_write(0, 5)
            assert c1.cp_read(0) == before
            with pytest.raises(IndexError):
                c0.cp_read(1)


class TestResourceExhaustion:
    def test_budget_raises_typed_error(self):
        budget = ResourceBudget({"widgets": 2})
        budget.acquire("widgets")
        with pytest.raises(SwitchResourceError) as exc:
            budget.acquire("widgets", 2)
        err = exc.value
        assert err.pool == "widgets"
        assert err.requested == 2
        assert err.used == 1
        assert err.capacity == 2
        assert "exhausted" in str(err)
        # The failed acquire must not partially charge.
        assert budget.used("widgets") == 1
        budget.release("widgets")
        assert budget.used("widgets") == 0

    def test_exhausted_switch_rejects_and_degrades_to_direct(self):
        config = ClusterConfig(num_replicas=2, protocol="p4ce", seed=23)
        fabric = SwitchFabric(config)
        first = Cluster(config, fabric=fabric)
        first.await_ready()
        budget = fabric.switch.resources
        # Drain the replication engine's group-id pool: the next tenant's
        # provisioning must fail *inside the switch*.
        budget.acquire("multicast_group_ids",
                       budget.remaining("multicast_group_ids"))
        second = Cluster(config, fabric=fabric)
        leader = second.await_ready()
        # Let the leader attempt (and get rejected on) group setup.
        second.run_for(5 * MS)
        assert fabric.control_plane.provision_rejects >= 1
        assert leader.comm_mode == "direct"
        # Consensus survives on the direct plane.
        done = []
        leader.propose(b"y" * 64,
                       lambda entry: done.append(entry.committed))
        fabric.sim.run_until(lambda: done, timeout=50 * MS)
        assert done and done[0]
        # Tenant 0 is untouched by tenant 1's rejection.
        assert first.leader is not None
