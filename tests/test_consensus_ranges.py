"""Units for the range key map and the hot-range planner."""

import pytest

from repro.consensus.ranges import (HotRangePlanner, KeyRange, RangeKeyMap,
                                    RangeMove)
from repro.switch.resources import (RANGE_STEERING_CAPACITY, STEERING_POOL,
                                    SwitchResourceError, steering_budget)


class TestRangeKeyMap:
    def test_uniform_partition_covers_keyspace(self):
        key_map = RangeKeyMap.uniform(1000, 8)
        assert len(key_map) == 8
        assert key_map.ranges[0].lo == 0
        assert key_map.ranges[-1].hi == 1000
        for left, right in zip(key_map.ranges, key_map.ranges[1:]):
            assert left.hi == right.lo

    def test_owner_of_routes_by_range(self):
        key_map = RangeKeyMap.uniform(100, 4)
        assert key_map.owner_of(0) == 0
        assert key_map.owner_of(24) == 0
        assert key_map.owner_of(25) == 1
        assert key_map.owner_of(99) == 3

    def test_out_of_range_key_rejected(self):
        key_map = RangeKeyMap.uniform(100, 4)
        with pytest.raises(ValueError):
            key_map.owner_of(100)
        with pytest.raises(ValueError):
            key_map.owner_of(-1)

    def test_non_contiguous_ranges_rejected(self):
        with pytest.raises(ValueError):
            RangeKeyMap(100, [KeyRange(0, 40, 0), KeyRange(50, 100, 1)])
        with pytest.raises(ValueError):
            RangeKeyMap(100, [KeyRange(0, 50, 0)])

    def test_split_keeps_owner_and_divides_load(self):
        key_map = RangeKeyMap.uniform(100, 2)
        key_map.ranges[0].load = 10.0
        key_map.split(0, 25)
        assert [r.lo for r in key_map.ranges] == [0, 25, 50]
        assert key_map.ranges[0].owner == key_map.ranges[1].owner == 0
        assert key_map.ranges[0].load == pytest.approx(5.0)
        assert key_map.ranges[1].load == pytest.approx(5.0)
        assert key_map.owner_of(30) == 0

    def test_split_bumps_version_and_rejects_bad_points(self):
        key_map = RangeKeyMap.uniform(100, 2)
        v = key_map.version
        key_map.split(0, 10)
        assert key_map.version == v + 1
        with pytest.raises(ValueError):
            key_map.split(0, 0)
        with pytest.raises(ValueError):
            key_map.split(0, 10)

    def test_cannot_split_migrating_range(self):
        key_map = RangeKeyMap.uniform(100, 2)
        key_map.ranges[0].migrating = True
        with pytest.raises(ValueError):
            key_map.split(0, 25)

    def test_group_loads_sum_by_owner(self):
        key_map = RangeKeyMap.uniform(100, 2)
        key_map.ranges[0].load = 3.0
        key_map.ranges[1].load = 7.0
        key_map.reassign(1, 0)
        assert key_map.group_loads(2) == [10.0, 0.0]


class TestHotRangePlanner:
    def _planner(self, groups=2, keyspace=1024, **kwargs):
        key_map = RangeKeyMap.uniform(keyspace, groups)
        return HotRangePlanner(key_map, groups, **kwargs), key_map

    def _warm(self, planner, counts, epochs=None):
        """Feed identical counts until the move pass is live; returns
        the first non-empty batch of proposed moves (or [])."""
        first = []
        for _ in range(epochs or planner.min_history + 1):
            planner.observe(counts)
            moves = planner.plan()
            if moves and not first:
                first = moves
        return first

    def test_balanced_load_proposes_nothing(self):
        planner, key_map = self._planner()
        for _ in range(planner.min_history + 2):
            # Width-proportional counts = a perfectly uniform keyspace,
            # rebinned against the current ranges after any splits.
            planner.observe([r.span for r in key_map.ranges])
            assert planner.plan() == []
        assert planner.moves_proposed == 0

    def test_hot_range_splits_then_moves(self):
        planner, key_map = self._planner()
        moves = self._warm(planner, [1000, 10])
        assert planner.splits > 0
        assert moves, "a skewed map must propose a move"
        assert all(isinstance(m, RangeMove) for m in moves)
        assert all(m.src == 0 and m.dst == 1 for m in moves)
        for move in moves:
            r = key_map.ranges[key_map.index_of(move.lo)]
            assert r.migrating, "proposed ranges must be fenced"

    def test_complete_move_flips_owner_and_unfences(self):
        planner, key_map = self._planner()
        moves = self._warm(planner, [1000, 10])
        move = moves[0]
        planner.complete_move(move.lo, move.dst)
        r = key_map.ranges[key_map.index_of(move.lo)]
        assert r.owner == move.dst and not r.migrating

    def test_abort_move_unfences_without_flip(self):
        planner, key_map = self._planner()
        moves = self._warm(planner, [1000, 10])
        move = moves[0]
        planner.abort_move(move.lo)
        r = key_map.ranges[key_map.index_of(move.lo)]
        assert r.owner == move.src and not r.migrating

    def test_no_moves_before_min_history(self):
        planner, _ = self._planner(min_history=5)
        for _ in range(4):
            planner.observe([1000, 10])
            assert planner.plan() == []

    def test_busy_destination_not_retargeted(self):
        """While a move to group 1 is in flight, group 1 accepts no
        second reconfiguration."""
        planner, _ = self._planner(groups=3, max_moves_per_epoch=8)
        moves = self._warm(planner, [900, 0, 0])
        dsts = [m.dst for m in moves]
        assert len(dsts) == len(set(dsts))
        more = self._warm(planner, [900, 0, 0], epochs=1)
        assert not any(m.dst in dsts for m in more)

    def test_cooldown_blocks_immediate_rebounce(self):
        planner, key_map = self._planner(cooldown_epochs=100)
        moves = self._warm(planner, [1000, 10])
        move = moves[0]
        planner.complete_move(move.lo, move.dst)
        # The moved range now makes group 1 the hot one; without the
        # cooldown the planner would bounce it straight back through
        # another 40 ms blackout.
        for _ in range(5):
            counts = [0] * len(key_map)
            counts[key_map.index_of(move.lo)] = 2000
            planner.observe(counts)
            for again in planner.plan():
                assert again.lo != move.lo

    def test_steering_budget_bounds_splits(self):
        budget = steering_budget(capacity=6)
        key_map = RangeKeyMap.uniform(1024, 2)
        planner = HotRangePlanner(key_map, 2, budget=budget)
        assert budget.used(STEERING_POOL) == 2
        self._warm(planner, [4000, 10], epochs=10)
        assert len(key_map) <= 6
        assert planner.steering_rejects > 0
        assert budget.used(STEERING_POOL) == len(key_map)

    def test_planner_rejects_oversubscribed_initial_map(self):
        key_map = RangeKeyMap.uniform(1024, 8)
        with pytest.raises(SwitchResourceError):
            HotRangePlanner(key_map, 8, budget=steering_budget(capacity=4))

    def test_default_capacity_admits_uniform_g8(self):
        key_map = RangeKeyMap.uniform(100_000, 8)
        planner = HotRangePlanner(key_map, 8, budget=steering_budget())
        assert planner.budget.remaining(STEERING_POOL) == \
            RANGE_STEERING_CAPACITY - 8
