"""Unit tests for the replicated log: encoding, recycling, scanning."""

import pytest

from repro.consensus.log import (
    CONTROL_REGION_BYTES,
    GRANTED_NONE,
    Log,
    encode_entry,
    encode_wrap_marker,
    entry_size,
    pack_control,
    unpack_control,
)
from repro.rdma import Access, AddressSpace
from repro.sim import SeededRng


def make_log(capacity=4096):
    space = AddressSpace(SeededRng(1))
    region = space.register(capacity, Access.REMOTE_WRITE | Access.REMOTE_READ)
    return Log(region)


class TestEncoding:
    def test_entry_size_alignment(self):
        assert entry_size(0) == 16
        assert entry_size(1) == 24
        assert entry_size(8) == 24
        assert entry_size(9) == 32

    def test_encode_pads_to_alignment(self):
        assert len(encode_entry(b"abc", 1)) == entry_size(3)

    def test_wrap_marker_is_header_sized(self):
        assert len(encode_wrap_marker(3)) == 16


class TestAppendConsume:
    def test_single_entry_roundtrip(self):
        log = make_log()
        offset, segments = log.append_local(b"hello", epoch=3)
        assert offset == 0
        assert len(segments) == 1
        entry = log.peek(0)
        assert entry.payload == b"hello"
        assert entry.epoch == 3

    def test_sequential_entries(self):
        log = make_log()
        for i in range(10):
            log.append_local(bytes([i]) * (i + 1), epoch=1)
        reader = make_log()
        reader.region.buffer[:] = log.region.buffer
        entries = list(reader.consume())
        assert len(entries) == 10
        assert [e.payload for e in entries] == [bytes([i]) * (i + 1)
                                                for i in range(10)]

    def test_peek_returns_none_for_missing_entry(self):
        log = make_log()
        assert log.peek(0) is None
        log.append_local(b"x", 1)
        assert log.peek(log.next_offset) is None

    def test_consume_is_incremental(self):
        writer = make_log()
        reader = make_log()
        writer.append_local(b"one", 1)
        reader.region.buffer[:] = writer.region.buffer
        assert [e.payload for e in reader.consume()] == [b"one"]
        writer.append_local(b"two", 1)
        reader.region.buffer[:] = writer.region.buffer
        assert [e.payload for e in reader.consume()] == [b"two"]

    def test_rescan_rebuilds_cursor(self):
        log = make_log()
        for i in range(5):
            log.append_local(b"abc", 1)
        end = log.next_offset
        log.next_offset = 0
        assert log.rescan() == end

    def test_oversized_entry_rejected(self):
        log = make_log(capacity=128)
        with pytest.raises(ValueError):
            log.append_local(b"x" * 200, 1)


class TestRecycling:
    def test_writer_wraps_with_marker(self):
        log = make_log(capacity=256)  # usable = 240
        payload = b"p" * 48  # entry size 64
        offsets = [log.append_local(payload, 1)[0] for _ in range(5)]
        # 3 entries fit in 240 usable bytes (3 * 64 = 192; next would
        # overflow), so the 4th wraps to the next lap.
        assert offsets[3] == log.usable
        assert log.physical(offsets[3]) == 0

    def test_wrap_produces_marker_segment(self):
        log = make_log(capacity=256)
        payload = b"p" * 48
        for _ in range(3):
            _, segments = log.append_local(payload, 1)
            assert len(segments) == 1
        _, segments = log.append_local(payload, 1)
        assert len(segments) == 2  # marker + entry

    def test_reader_follows_wrap(self):
        writer = make_log(capacity=256)
        reader = make_log(capacity=256)
        payloads = [bytes([i]) * 48 for i in range(8)]
        seen = []
        for payload in payloads:
            writer.append_local(payload, 1)
            reader.region.buffer[:] = writer.region.buffer
            seen.extend(e.payload for e in reader.consume())
        assert seen == payloads

    def test_stale_bytes_from_previous_lap_ignored(self):
        writer = make_log(capacity=256)
        reader = make_log(capacity=256)
        # Fill one lap completely, sync, consume.
        for i in range(3):
            writer.append_local(bytes([i]) * 48, 1)
        reader.region.buffer[:] = writer.region.buffer
        consumed = list(reader.consume())
        assert len(consumed) == 3
        # Writer wraps; reader sees the marker but lap-2 data is not
        # there yet: old lap-1 bytes at offset 0 must not be yielded.
        writer.append_local(b"n" * 48, 1)
        snapshot = bytearray(reader.region.buffer)
        marker_only = writer.region.buffer[:16]
        snapshot[writer.physical(consumed[-1].next_offset):
                 writer.physical(consumed[-1].next_offset) + 16] = \
            writer.region.buffer[writer.physical(consumed[-1].next_offset):
                                 writer.physical(consumed[-1].next_offset) + 16]
        reader.region.buffer[:] = snapshot
        assert list(reader.consume()) == []

    def test_many_laps(self):
        writer = make_log(capacity=512)
        reader = make_log(capacity=512)
        total = 0
        for i in range(100):
            writer.append_local(bytes([i % 251]) * 40, 1)
            reader.region.buffer[:] = writer.region.buffer
            total += len(list(reader.consume()))
        assert total == 100
        assert writer.lap_of(writer.next_offset) > 5

    def test_raw_roundtrip_across_wrap(self):
        log = make_log(capacity=256)
        for i in range(4):  # forces a wrap
            log.append_local(bytes([i]) * 48, 1)
        start = 2 * 64
        data = log.read_raw(start, log.next_offset - start)
        other = make_log(capacity=256)
        other.write_raw(start, data)
        assert other.read_raw(start, len(data)) == data

    def test_raw_segments_cover_range_contiguously(self):
        log = make_log(capacity=256)
        for i in range(4):
            log.append_local(bytes([i]) * 48, 1)
        segments = log.raw_segments(0, log.next_offset)
        assert sum(len(s.data) for s in segments) == log.next_offset
        logical = 0
        for segment in segments:
            assert segment.logical_offset == logical
            assert segment.physical_offset == log.physical(logical)
            logical += len(segment.data)


class TestControlRegion:
    def test_roundtrip(self):
        data = pack_control(7, 1024, 3, 2)
        assert unpack_control(data) == (7, 1024, 3, 2)
        assert len(data) == CONTROL_REGION_BYTES

    def test_granted_none_default(self):
        data = pack_control(1, 2, 3)
        assert unpack_control(data)[3] == GRANTED_NONE
