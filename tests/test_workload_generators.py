"""Tests for the Zipfian/uniform generators and the YCSB workload."""

import pytest

from repro.sim import SeededRng
from repro.smr import KvStore
from repro.workloads import UniformGenerator, YcsbWorkload, ZipfianGenerator


class TestZipfian:
    def test_values_in_range(self):
        gen = ZipfianGenerator(100, 0.99, SeededRng(1))
        assert all(0 <= v < 100 for v in gen.sample(5000))

    def test_skew_concentrates_on_hot_keys(self):
        gen = ZipfianGenerator(1000, 0.99, SeededRng(1))
        samples = gen.sample(20_000)
        hot = sum(1 for v in samples if v < 10)
        # With theta=0.99 the top 1% of keys takes a large share.
        assert hot / len(samples) > 0.25

    def test_theta_zero_is_roughly_uniform(self):
        gen = ZipfianGenerator(10, 0.0, SeededRng(2))
        samples = gen.sample(20_000)
        counts = [samples.count(i) for i in range(10)]
        assert max(counts) < 2 * min(counts)

    def test_more_skew_with_higher_theta(self):
        low = ZipfianGenerator(1000, 0.5, SeededRng(3))
        high = ZipfianGenerator(1000, 0.99, SeededRng(3))
        hot_low = sum(1 for v in low.sample(10_000) if v == 0)
        hot_high = sum(1 for v in high.sample(10_000) if v == 0)
        assert hot_high > hot_low

    def test_deterministic(self):
        a = ZipfianGenerator(100, 0.9, SeededRng(7)).sample(100)
        b = ZipfianGenerator(100, 0.9, SeededRng(7)).sample(100)
        assert a == b

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.0)

    def test_single_key_space(self):
        gen = ZipfianGenerator(1, 0.99, SeededRng(1))
        assert set(gen.sample(100)) == {0}


class TestUniform:
    def test_range_and_coverage(self):
        gen = UniformGenerator(5, SeededRng(1))
        samples = {gen.next() for _ in range(500)}
        assert samples == {0, 1, 2, 3, 4}


class TestYcsb:
    def test_mix_fractions(self):
        workload = YcsbWorkload("B", keys=100, rng=SeededRng(4))
        for _ in range(10_000):
            workload.next_operation()
        fraction = workload.updates / (workload.updates + workload.reads)
        assert 0.03 < fraction < 0.07  # mix B: 5% updates

    def test_mix_c_is_read_only(self):
        workload = YcsbWorkload("C", keys=10, rng=SeededRng(4))
        for _ in range(100):
            kind, _key, command = workload.next_operation()
            assert kind == "read" and command == b""

    def test_update_commands_apply_to_kvstore(self):
        workload = YcsbWorkload("W", keys=10, value_size=16, rng=SeededRng(5))
        store = KvStore()
        for _ in range(50):
            kind, key, command = workload.next_operation()
            result = store.apply(command)
            assert result is True
            assert len(store.get(key)) == 16

    def test_load_phase_covers_all_keys(self):
        workload = YcsbWorkload("A", keys=20, rng=SeededRng(6))
        store = KvStore()
        for command in workload.load_phase(20):
            store.apply(command)
        assert len(store.data) == 20

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError):
            YcsbWorkload("Z")
