"""Tests for the Zipfian/uniform generators and the YCSB workload."""

import pytest

from repro.sim import SeededRng
from repro.smr import KvStore
from repro.workloads import (SplitMix64, UniformGenerator, YcsbWorkload,
                             ZipfianGenerator, zipf_share)
from repro.workloads import generators


class TestZipfian:
    def test_values_in_range(self):
        gen = ZipfianGenerator(100, 0.99, SeededRng(1))
        assert all(0 <= v < 100 for v in gen.sample(5000))

    def test_skew_concentrates_on_hot_keys(self):
        gen = ZipfianGenerator(1000, 0.99, SeededRng(1))
        samples = gen.sample(20_000)
        hot = sum(1 for v in samples if v < 10)
        # With theta=0.99 the top 1% of keys takes a large share.
        assert hot / len(samples) > 0.25

    def test_theta_zero_is_roughly_uniform(self):
        gen = ZipfianGenerator(10, 0.0, SeededRng(2))
        samples = gen.sample(20_000)
        counts = [samples.count(i) for i in range(10)]
        assert max(counts) < 2 * min(counts)

    def test_more_skew_with_higher_theta(self):
        low = ZipfianGenerator(1000, 0.5, SeededRng(3))
        high = ZipfianGenerator(1000, 0.99, SeededRng(3))
        hot_low = sum(1 for v in low.sample(10_000) if v == 0)
        hot_high = sum(1 for v in high.sample(10_000) if v == 0)
        assert hot_high > hot_low

    def test_deterministic(self):
        a = ZipfianGenerator(100, 0.9, SeededRng(7)).sample(100)
        b = ZipfianGenerator(100, 0.9, SeededRng(7)).sample(100)
        assert a == b

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.0)

    def test_single_key_space(self):
        gen = ZipfianGenerator(1, 0.99, SeededRng(1))
        assert set(gen.sample(100)) == {0}


class TestUniform:
    def test_range_and_coverage(self):
        gen = UniformGenerator(5, SeededRng(1))
        samples = {gen.next() for _ in range(500)}
        assert samples == {0, 1, 2, 3, 4}


class TestSplitMix64:
    def test_counter_stream_is_deterministic(self):
        a = SplitMix64(123)
        b = SplitMix64(123)
        assert [a.next_u64() for _ in range(10)] == \
            [b.next_u64() for _ in range(10)]

    def test_units_in_half_open_interval(self):
        stream = SplitMix64(7)
        units = [stream.next_unit() for _ in range(1000)]
        assert all(0.0 <= u < 1.0 for u in units)

    def test_batch_matches_scalar_stream(self):
        scalar = SplitMix64(99)
        batch = SplitMix64(99)
        expect = [scalar.next_unit() for _ in range(257)]
        got = list(batch.unit_batch(257))
        assert got == expect

    def test_batch_and_scalar_interleave(self):
        """A batch draw advances the counter exactly like n scalar draws."""
        a, b = SplitMix64(5), SplitMix64(5)
        seq_a = [a.next_unit() for _ in range(3)] + list(a.unit_batch(5)) \
            + [a.next_unit()]
        seq_b = [b.next_unit() for _ in range(9)]
        assert seq_a == seq_b


class TestSampleBatch:
    @pytest.mark.parametrize("theta", [0.0, 0.5, 0.99])
    def test_zipfian_batch_equals_scalar(self, theta):
        scalar = ZipfianGenerator(1000, theta, SeededRng(11))
        batch = ZipfianGenerator(1000, theta, SeededRng(11))
        expect = [scalar.next() for _ in range(2000)]
        assert list(batch.sample_batch(2000)) == expect

    def test_uniform_batch_equals_scalar(self):
        scalar = UniformGenerator(37, SeededRng(2))
        batch = UniformGenerator(37, SeededRng(2))
        expect = [scalar.next() for _ in range(500)]
        assert list(batch.sample_batch(500)) == expect

    def test_scalar_fallback_is_bit_identical(self, monkeypatch):
        """REPRO_NO_NUMPY must not change a single sampled key."""
        vectorized = ZipfianGenerator(500, 0.99, SeededRng(3))
        with_numpy = list(vectorized.sample_batch(1000))
        monkeypatch.setattr(generators, "NUMPY", False)
        fallback = ZipfianGenerator(500, 0.99, SeededRng(3))
        assert list(fallback.sample_batch(1000)) == with_numpy

    def test_single_key_space_batch(self):
        gen = ZipfianGenerator(1, 0.99, SeededRng(1))
        assert set(gen.sample_batch(64)) == {0}

    def test_batch_values_in_range(self):
        gen = ZipfianGenerator(100, 0.99, SeededRng(8))
        assert all(0 <= v < 100 for v in gen.sample_batch(5000))


class TestZipfShare:
    def test_full_range_is_unity(self):
        assert zipf_share(1000, 0.99, 0, 1000) == pytest.approx(1.0)

    def test_head_dominates_under_skew(self):
        head = zipf_share(100_000, 0.99, 0, 1)
        assert 0.05 < head < 0.12  # the hottest key alone, ~8%

    def test_uniform_shares_are_proportional(self):
        assert zipf_share(1000, 0.0, 0, 100) == pytest.approx(0.1)


class TestYcsb:
    def test_mix_fractions(self):
        workload = YcsbWorkload("B", keys=100, rng=SeededRng(4))
        for _ in range(10_000):
            workload.next_operation()
        fraction = workload.updates / (workload.updates + workload.reads)
        assert 0.03 < fraction < 0.07  # mix B: 5% updates

    def test_mix_c_is_read_only(self):
        workload = YcsbWorkload("C", keys=10, rng=SeededRng(4))
        for _ in range(100):
            kind, _key, command = workload.next_operation()
            assert kind == "read" and command == b""

    def test_update_commands_apply_to_kvstore(self):
        workload = YcsbWorkload("W", keys=10, value_size=16, rng=SeededRng(5))
        store = KvStore()
        for _ in range(50):
            kind, key, command = workload.next_operation()
            result = store.apply(command)
            assert result is True
            assert len(store.get(key)) == 16

    def test_load_phase_covers_all_keys(self):
        workload = YcsbWorkload("A", keys=20, rng=SeededRng(6))
        store = KvStore()
        for command in workload.load_phase(20):
            store.apply(command)
        assert len(store.data) == 20

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError):
            YcsbWorkload("Z")
