"""Serving tier: fleet sampling, open-loop driver, hot-range migration.

The heavyweight claims live here: per-shard wire digests bit-identical
between the fast and slow simulator lanes *across a live hot-range
migration*, a fault injected inside the 40 ms migration window healing
without a wedge, and a budget-exhausted move degrading to the direct
plane instead of blocking the fenced ops forever.
"""

import pytest

from repro import fastlane
from repro.consensus.cluster import ShardedCluster
from repro.consensus.config import ClusterConfig
from repro.consensus.ranges import HotRangePlanner, RangeKeyMap
from repro.faults.injector import FaultInjector
from repro.sim import SeededRng
from repro.switch.resources import steering_budget
from repro.workloads import generators
from repro.workloads.experiments import install_trace_digest
from repro.workloads.fleet import (ClientFleet, FleetConfig, ServingDriver,
                                   run_serving_cell)
from repro.workloads.metrics import LatencyRecorder

#: Small serving cell: 2 groups, hot head, one migration inside the
#: window (planner warmed fast so the move completes by ~52 ms).
CELL = dict(groups=2, replicas=2, seed=7, keyspace=1000, clients=10_000,
            offered_ops_per_sec=40_000.0, theta=0.99, value_size=32,
            inflight_window=1, service_gap_ns=20_000.0, fleet_seed=3,
            window_ns=60e6, epoch_ns=5e6,
            planner=dict(min_span=8, min_history=1))


class TestLatencyRecorder:
    def test_percentiles_and_p999(self):
        recorder = LatencyRecorder()
        recorder.record_many(float(i) for i in range(1, 1001))
        summary = recorder.summary()
        assert summary["p50_us"] == pytest.approx(0.5005, rel=1e-3)
        assert summary["p999_us"] == pytest.approx(0.999001, rel=1e-6)
        assert summary["p999_us"] <= summary["max_us"]
        assert recorder.percentile_ns(50) == pytest.approx(500.5)

    def test_sort_cache_tracks_new_samples(self):
        recorder = LatencyRecorder()
        recorder.record(100.0)
        assert recorder.percentile_ns(50) == 100.0
        recorder.record(10.0)  # must invalidate the cached sort
        assert recorder.percentile_ns(0) == 10.0
        recorder.record_many([5.0, 200.0])
        assert recorder.percentile_ns(0) == 5.0
        assert recorder.percentile_ns(100) == 200.0

    def test_record_order_does_not_matter(self):
        a, b = LatencyRecorder(), LatencyRecorder()
        a.record_many([3.0, 1.0, 2.0])
        b.record_many([1.0, 2.0, 3.0])
        assert a.summary() == b.summary()


class TestClientFleet:
    def _fleet(self, **overrides):
        config = FleetConfig(clients=10_000, offered_ops_per_sec=100_000.0,
                             keyspace=1000, theta=0.99, seed=4, **overrides)
        return ClientFleet(config)

    def test_epoch_sampling_is_deterministic(self):
        a, b = self._fleet(), self._fleet()
        assert a.sample_epoch(0.0, 5e6) == b.sample_epoch(0.0, 5e6)
        assert a.sample_epoch(5e6, 5e6) == b.sample_epoch(5e6, 5e6)

    def test_arrivals_sorted_within_window(self):
        fleet = self._fleet()
        arrivals, keys = fleet.sample_epoch(10e6, 5e6)
        assert arrivals == sorted(arrivals)
        assert all(10e6 <= t < 15e6 for t in arrivals)
        assert len(arrivals) == len(keys)
        assert all(0 <= k < 1000 for k in keys)

    def test_arrival_count_tracks_offered_rate(self):
        fleet = self._fleet()
        total = sum(len(fleet.sample_epoch(i * 5e6, 5e6)[0])
                    for i in range(40))
        # 100k ops/s over 200 ms of epochs ~ 20000 arrivals.
        assert 18_000 < total < 22_000

    def test_scalar_backend_samples_identically(self, monkeypatch):
        vectorized = self._fleet().sample_epoch(0.0, 5e6)
        monkeypatch.setattr(generators, "NUMPY", False)
        fallback = self._fleet().sample_epoch(0.0, 5e6)
        assert fallback == vectorized


def _run_cell(fast_lane, migration=True, injector_for=None, arm=None,
              drain_groups=False, **overrides):
    """One small serving cell; returns (report, driver, cluster)."""
    spec = dict(CELL, **overrides)
    fastlane.flags.set_all(fast_lane)
    try:
        config = ClusterConfig(num_replicas=spec["replicas"],
                               protocol="p4ce", seed=spec["seed"],
                               value_size_hint=spec["value_size"],
                               batching=False)
        key_map = RangeKeyMap.uniform(spec["keyspace"], spec["groups"])
        cluster = ShardedCluster(spec["groups"], config, mode="lanes",
                                 key_map=key_map)
        digests = [install_trace_digest(shard) for shard in cluster.shards]
        cluster.await_ready()
        if drain_groups:
            # Exhaust every shard switch's group pool so the migration's
            # re-provisioning CM exchange is REJECTed.
            for shard in cluster.shards:
                budget = shard.control_plane.resources
                budget.acquire("communication_groups",
                               budget.remaining("communication_groups"))
        injector = None
        if injector_for is not None:
            injector = FaultInjector(cluster.shards[injector_for])
            arm(injector, cluster)
        fleet = ClientFleet(FleetConfig(
            clients=spec["clients"],
            offered_ops_per_sec=spec["offered_ops_per_sec"],
            keyspace=spec["keyspace"], theta=spec["theta"],
            value_size=spec["value_size"],
            inflight_window=spec["inflight_window"],
            service_gap_ns=spec["service_gap_ns"],
            seed=spec["fleet_seed"]))
        planner = None
        if migration:
            planner = HotRangePlanner(key_map, spec["groups"],
                                      budget=steering_budget(),
                                      **spec["planner"])
        driver = ServingDriver(cluster, fleet, planner=planner,
                               injector=injector, warmup_epochs=2)
        driver.run(spec["window_ns"], spec["epoch_ns"])
        report = driver.report(spec["window_ns"])
        report["trace_digests"] = [d.hexdigest() for d in digests]
        return report, driver, cluster
    finally:
        fastlane.enable()


class TestServingDeterminism:
    def test_fast_slow_digest_parity_across_live_migration(self):
        fast, driver, _ = _run_cell(True)
        assert any(m["complete"] for m in fast["migrations"]), \
            "the cell must exercise a live migration"
        slow, _, _ = _run_cell(False)
        assert fast["trace_digests"] == slow["trace_digests"]
        assert fast["commits"] == slow["commits"]
        assert fast["injected"] == slow["injected"]
        assert fast["migrations"] == slow["migrations"]
        assert fast["latency"] == slow["latency"]
        # Ops may stay fenced only under a move still in flight at the
        # window edge; a *completed* move must leave nothing behind.
        in_flight = {m["lo"] for m in fast["migrations"]
                     if not m["complete"]}
        assert set(driver._held) <= in_flight

    def test_migration_dip_bounded_and_reported(self):
        report, _, _ = _run_cell(True)
        assert report["availability_dips_bounded"]
        done = [m for m in report["migrations"] if m["complete"]]
        assert done
        for move in done:
            # The dip is the 40 ms reconfiguration window plus CM and
            # barrier quantization -- never a silent free move.
            assert 39.0 < move["dip_ms"] <= report[
                "availability_dip_bound_ms"]
            assert move["ops_held"] >= 0

    def test_migration_off_leaves_map_static(self):
        report, driver, _ = _run_cell(True, migration=False)
        assert report["migrations"] == []
        assert report["ranges"] == CELL["groups"]
        assert report["commits"] > 0
        assert driver.map.version == 0


class TestMigrationWindowFault:
    def _arm(self, injector, cluster):
        leader = cluster.shards[1].leader
        nid = leader.node_id
        injector.at_migration(nth=1, offset_ns=5e6).partition_host(nid, False)
        injector.at_migration(nth=1, offset_ns=5.3e6).heal_host(nid)

    def test_leader_cable_cut_inside_window_heals(self):
        fast, driver, cluster = _run_cell(True, injector_for=1,
                                          arm=self._arm)
        first = fast["migrations"][0]
        assert first["dst"] == 1, "cell shape drifted: first move must " \
            "target group 1 (re-pin the fault arming)"
        kinds = [r.kind for r in driver.injector.journal]
        assert "migration_window" in kinds
        assert "partition" in kinds and "heal" in kinds
        assert first["complete"] and first["ok"]
        assert first["lo"] not in driver._held
        assert fast["commits"] > 0
        # The same faulted run, all lanes off: fusion must defuse at the
        # cut, replay recovery on the slow path, and not move one byte.
        slow, _, _ = _run_cell(False, injector_for=1, arm=self._arm)
        assert fast["trace_digests"] == slow["trace_digests"]
        assert fast["commits"] == slow["commits"]
        assert fast["migrations"] == slow["migrations"]


class TestBudgetExhaustedMove:
    def test_rejected_move_degrades_to_direct_plane(self):
        report, driver, cluster = _run_cell(True, drain_groups=True)
        done = [m for m in report["migrations"] if m["complete"]]
        assert done, "the move must still complete (degraded), not wedge"
        first = done[0]
        assert not first["ok"] and first["degraded"]
        dst = cluster.shards[first["dst"]]
        assert dst.leader.comm_mode == "direct"
        assert dst.control_plane.provision_rejects >= 1
        assert dst.control_plane.reject_pools.get(
            "communication_groups", 0) >= 1
        # Fenced ops of the completed move were released and served
        # over the direct plane (not wedged behind the REJECT).
        assert first["lo"] not in driver._held
        assert report["per_shard_commits"][first["dst"]] > 0
        assert report["commits"] > 0


class TestRunServingCell:
    def test_spec_runner_round_trips(self):
        report = run_serving_cell(dict(CELL, fast_lane=True))
        assert report["commits"] > 0
        assert len(report["trace_digests"]) == CELL["groups"]
        assert report["wall_clock_s"] > 0
        assert report["migration"] is True
        assert report["clients"] == CELL["clients"]
