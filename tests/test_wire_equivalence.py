"""Wire equivalence: object-mode processing matches the packed bytes.

The simulation's hot path moves header *objects*; the codecs define the
bytes.  These tests prove the two views agree end to end: packets that
crossed the P4CE switch, when packed and re-parsed from raw bytes,
contain exactly the rewritten fields -- i.e. the switch model is a
faithful packet rewriter, not a Python-object trick.
"""

import sys

import pytest

from repro import params
from repro.net import Packet
from repro.rdma import parse_roce
from repro.rdma.headers import Bth, Reth

sys.path.insert(0, "tests")
from test_p4ce_plane import MS, MemberAdvert, P4ceRig  # noqa: E402


def capture_frames(rig, predicate):
    """Attach taps on all switch-adjacent links, collecting packed bytes."""
    captured = []
    for host in rig.hosts:
        link = host.nic.port.link

        def tap(src, packet, _link=link):
            if predicate(src, packet):
                captured.append((src.name, packet.pack(), packet))

        link.tap = tap
    return captured


class TestScatterBytes:
    def test_replica_receives_fully_rewritten_bytes(self):
        rig = P4ceRig(num_replicas=2, randomize_psn=True)
        qp, cq, result = rig.create_group()
        advert = MemberAdvert.unpack(result["pd"])
        group = next(iter(rig.cp.groups.values()))

        # Tap frames the switch transmits toward replica 1.
        replica = rig.replicas[0]
        frames = []
        link = replica.nic.port.link

        def tap(src, packet):
            if src.device is not replica.nic and packet.udp \
                    and packet.udp.dst_port == params.ROCE_UDP_PORT:
                frames.append(packet.pack())

        link.tap = tap
        rig.leader.post_write(qp, b"wire-check", 256, advert.r_key)
        rig.sim.run(until=rig.sim.now + 2 * MS)
        assert frames, "no scattered frame captured"

        parsed = Packet.parse(frames[0])
        assert parsed.ipv4.src == rig.switch.ip
        assert parsed.ipv4.dst == replica.ip
        bth, reth, aeth, payload = parse_roce(parsed.payload)
        conn = next(c for c in group.replica_conns.values()
                    if c.ip == replica.ip)
        log = rig.logs[replica.node_id]
        # The bytes on the wire carry the *replica's* coordinates.
        assert bth.dest_qp == conn.qpn
        assert reth.r_key == log.r_key
        assert reth.virtual_address == log.addr + 256
        assert payload == b"wire-check"

    def test_leader_psn_translated_on_the_wire(self):
        rig = P4ceRig(num_replicas=2, randomize_psn=True)
        qp, cq, result = rig.create_group()
        advert = MemberAdvert.unpack(result["pd"])
        group = next(iter(rig.cp.groups.values()))
        replica = rig.replicas[0]
        conn = next(c for c in group.replica_conns.values()
                    if c.ip == replica.ip)
        leader_frames, replica_frames = [], []

        def leader_tap(src, packet):
            if src.device is rig.leader.nic and packet.udp \
                    and packet.udp.dst_port == params.ROCE_UDP_PORT:
                leader_frames.append(packet.pack())

        def replica_tap(src, packet):
            if src.device is not replica.nic and packet.udp \
                    and packet.udp.dst_port == params.ROCE_UDP_PORT:
                replica_frames.append(packet.pack())

        rig.leader.nic.port.link.tap = leader_tap
        replica.nic.port.link.tap = replica_tap
        rig.leader.post_write(qp, b"p", 0, advert.r_key)
        rig.sim.run(until=rig.sim.now + 2 * MS)
        lbth, _, _, _ = parse_roce(Packet.parse(leader_frames[0]).payload)
        rbth, _, _, _ = parse_roce(Packet.parse(replica_frames[0]).payload)
        assert rbth.psn == conn.translate_psn_to_replica(lbth.psn)
        if conn.psn_offset:
            assert rbth.psn != lbth.psn


class TestGatherBytes:
    def test_aggregated_ack_bytes_match_leader_expectations(self):
        rig = P4ceRig(num_replicas=4, randomize_psn=True)
        qp, cq, result = rig.create_group()
        advert = MemberAdvert.unpack(result["pd"])
        sent_psn = {}
        ack_frames = []

        def leader_tap(src, packet):
            if packet.udp and packet.udp.dst_port == params.ROCE_UDP_PORT:
                bth, _, _, _ = parse_roce(Packet.parse(packet.pack()).payload)
                if src.device is rig.leader.nic:
                    sent_psn["psn"] = bth.psn
                else:
                    ack_frames.append(packet.pack())

        rig.leader.nic.port.link.tap = leader_tap
        rig.leader.post_write(qp, b"gg", 0, advert.r_key)
        rig.sim.run(until=rig.sim.now + 2 * MS)
        assert len(ack_frames) == 1, "exactly one aggregated ACK on the wire"
        parsed = Packet.parse(ack_frames[0])
        assert parsed.ipv4.src == rig.switch.ip
        assert parsed.ipv4.dst == rig.leader.ip
        bth, _, aeth, _ = parse_roce(parsed.payload)
        assert bth.psn == sent_psn["psn"]  # translated back to leader space
        assert bth.dest_qp == qp.qpn
        assert aeth is not None


class TestPackParseIdentity:
    def test_multihop_pack_parse_roundtrip(self):
        """pack() -> parse() -> pack() is a fixed point for RoCE frames."""
        rig = P4ceRig(num_replicas=2)
        qp, cq, result = rig.create_group()
        advert = MemberAdvert.unpack(result["pd"])
        frames = []

        def tap(src, packet):
            if packet.udp and packet.udp.dst_port == params.ROCE_UDP_PORT:
                frames.append(packet.pack())

        for host in rig.hosts:
            host.nic.port.link.tap = tap
        rig.leader.post_write(qp, b"idempotent", 0, advert.r_key)
        rig.sim.run(until=rig.sim.now + 2 * MS)
        assert frames
        for raw in frames:
            parsed = Packet.parse(raw)
            bth, reth, aeth, payload = parse_roce(parsed.payload)
            rebuilt = Packet(parsed.eth, parsed.ipv4, parsed.udp,
                             [h for h in (bth, reth, aeth) if h is not None],
                             payload, has_icrc=True)
            assert rebuilt.finalize().pack() == raw
