"""Packet loss, retransmission, timeout and CM handshake tests."""

import pytest

from repro import params
from repro.rdma import (
    Access,
    ListenerReply,
    QpState,
    WcStatus,
)


def drain(rig, ms=2.0):
    rig.sim.run(until=rig.sim.now + ms * 1e6)


class TestLossRecovery:
    def test_write_survives_single_packet_loss(self, two_hosts):
        qp, cq, _sqp, _scq, region = two_hosts.connected_qp_pair()
        done = []
        cq.on_completion = done.append
        # Drop exactly the next data frame via the link tap.
        dropped = {"n": 0}
        original_up = two_hosts.link.up

        def tap(src, packet):
            if dropped["n"] == 0 and packet.udp \
                    and packet.udp.dst_port == params.ROCE_UDP_PORT \
                    and src.device is two_hosts.client.nic:
                dropped["n"] += 1
                two_hosts.link.up = False
                two_hosts.sim.schedule(10, lambda: setattr(two_hosts.link, "up", True))

        two_hosts.link.tap = tap
        two_hosts.client.post_write(qp, b"persist", region.addr, region.r_key)
        drain(two_hosts, ms=5)
        assert done and done[0].ok
        assert region.read(region.addr, 7) == b"persist"
        assert qp.retransmissions >= 1

    def test_lost_ack_recovers_via_duplicate_reack(self, two_hosts):
        qp, cq, _sqp, _scq, region = two_hosts.connected_qp_pair()
        done = []
        cq.on_completion = done.append
        state = {"dropped": False}

        def tap(src, packet):
            # Drop the first ACK from the server.
            if not state["dropped"] and src.device is two_hosts.server.nic \
                    and packet.udp and packet.udp.dst_port == params.ROCE_UDP_PORT:
                state["dropped"] = True
                two_hosts.link.up = False
                two_hosts.sim.schedule(10, lambda: setattr(two_hosts.link, "up", True))

        two_hosts.link.tap = tap
        two_hosts.client.post_write(qp, b"ackloss", region.addr, region.r_key)
        drain(two_hosts, ms=5)
        assert done and done[0].ok

    def test_retry_exhaustion_errors_qp(self, two_hosts):
        qp, cq, _sqp, _scq, region = two_hosts.connected_qp_pair()
        done = []
        cq.on_completion = done.append
        two_hosts.link.set_down()
        two_hosts.client.post_write(qp, b"x", region.addr, region.r_key)
        drain(two_hosts, ms=5)
        assert done and done[0].status is WcStatus.RETRY_EXCEEDED
        assert qp.state is QpState.ERROR

    def test_timeout_duration_matches_formula(self, two_hosts):
        """Timeouts are 4.096 us x 2^x (section V-E)."""
        assert params.RDMA_TIMEOUT_NS == params.rdma_timeout_ns(5)
        qp, cq, _sqp, _scq, region = two_hosts.connected_qp_pair()
        done = []
        cq.on_completion = done.append
        start = two_hosts.sim.now
        two_hosts.link.set_down()
        two_hosts.client.post_write(qp, b"x", region.addr, region.r_key)
        two_hosts.sim.run_until(lambda: bool(done), timeout=10_000_000)
        elapsed = two_hosts.sim.now - start
        expected = (params.RDMA_RETRY_COUNT + 1) * params.RDMA_TIMEOUT_NS
        assert elapsed == pytest.approx(expected, rel=0.2)

    def test_random_loss_eventually_delivers(self, two_hosts):
        qp, cq, _sqp, _scq, region = two_hosts.connected_qp_pair()
        done = []
        cq.on_completion = done.append
        two_hosts.link.drop_probability = 0.2
        for i in range(20):
            two_hosts.client.post_write(qp, bytes([i]) * 16,
                                        region.addr + 16 * i, region.r_key)
        drain(two_hosts, ms=50)
        two_hosts.link.drop_probability = 0.0
        drain(two_hosts, ms=10)
        ok = [wc for wc in done if wc.ok]
        assert len(ok) == 20
        for i in range(20):
            assert region.read(region.addr + 16 * i, 16) == bytes([i]) * 16


class TestConnectionManager:
    def test_private_data_both_directions(self, two_hosts):
        server_qp = two_hosts.server.create_qp(two_hosts.server.create_cq())
        seen = {}

        def handler(info):
            seen["request_pd"] = info.private_data
            return ListenerReply(qp=server_qp, private_data=b"server-secret")

        two_hosts.server.cm.listen(0x77, handler)
        qp = two_hosts.client.create_qp(two_hosts.client.create_cq())
        result = {}
        two_hosts.client.cm.connect(two_hosts.server.ip, 0x77, qp,
                                    b"client-hello",
                                    lambda q, pd, err: result.update(pd=pd, err=err))
        drain(two_hosts)
        assert seen["request_pd"] == b"client-hello"
        assert result["pd"] == b"server-secret"
        assert result["err"] is None

    def test_reject_surfaces_error(self, two_hosts):
        two_hosts.server.cm.listen(
            0x77, lambda info: ListenerReply(reject_reason=42))
        qp = two_hosts.client.create_qp(two_hosts.client.create_cq())
        result = {}
        two_hosts.client.cm.connect(two_hosts.server.ip, 0x77, qp, b"",
                                    lambda q, pd, err: result.update(err=err, qp=q))
        drain(two_hosts)
        assert result["qp"] is None
        assert "42" in result["err"]

    def test_unknown_service_rejected(self, two_hosts):
        qp = two_hosts.client.create_qp(two_hosts.client.create_cq())
        result = {}
        two_hosts.client.cm.connect(two_hosts.server.ip, 0xDEAD, qp, b"",
                                    lambda q, pd, err: result.update(err=err))
        drain(two_hosts)
        assert result["err"] is not None

    def test_connect_timeout_when_peer_dark(self, two_hosts):
        two_hosts.link.set_down()
        qp = two_hosts.client.create_qp(two_hosts.client.create_cq())
        result = {}
        two_hosts.client.cm.connect(two_hosts.server.ip, 0x77, qp, b"",
                                    lambda q, pd, err: result.update(err=err))
        two_hosts.sim.run(until=two_hosts.sim.now + 100_000_000)
        assert result["err"] == "connect timed out"

    def test_handshake_survives_lost_request(self, two_hosts):
        server_qp = two_hosts.server.create_qp(two_hosts.server.create_cq())
        two_hosts.server.cm.listen(0x77, lambda info: ListenerReply(qp=server_qp))
        qp = two_hosts.client.create_qp(two_hosts.client.create_cq())
        result = {}
        two_hosts.link.set_down()
        two_hosts.sim.schedule(2_000_000, two_hosts.link.set_up)
        two_hosts.client.cm.connect(two_hosts.server.ip, 0x77, qp, b"",
                                    lambda q, pd, err: result.update(err=err))
        two_hosts.sim.run(until=two_hosts.sim.now + 50_000_000)
        assert result["err"] is None
        assert qp.state is QpState.RTS

    def test_on_ready_fires_after_rtu(self, two_hosts):
        server_qp = two_hosts.server.create_qp(two_hosts.server.create_cq())
        ready = []
        two_hosts.server.cm.listen(
            0x77, lambda info: ListenerReply(qp=server_qp,
                                             on_ready=ready.append))
        qp = two_hosts.client.create_qp(two_hosts.client.create_cq())
        two_hosts.client.cm.connect(two_hosts.server.ip, 0x77, qp, b"",
                                    lambda q, pd, err: None)
        drain(two_hosts)
        assert ready == [server_qp]

    def test_negotiated_psns_are_used(self, two_hosts):
        qp, cq, sqp, _scq, region = two_hosts.connected_qp_pair()
        # Client initial send PSN equals what the server expects.
        assert qp.next_psn == sqp.expected_psn
        assert sqp.next_psn == qp.expected_psn
