"""Focused unit tests for Member mechanics: batching carriers, commit
ordering, proposal queueing, segment merging."""

import pytest

from repro import Cluster, ClusterConfig, Role
from repro.consensus.member import _merge_segments
from repro.consensus.log import Segment

MS = 1_000_000


def make(**kw):
    kw.setdefault("seed", 41)
    kw.setdefault("protocol", "p4ce")
    kw.setdefault("num_replicas", 2)
    cluster = Cluster.build(ClusterConfig(**kw))
    cluster.await_ready()
    return cluster


class TestMergeSegments:
    def test_adjacent_segments_coalesce(self):
        segments = [Segment(0, b"aaaa", 0), Segment(4, b"bbbb", 4)]
        merged = _merge_segments(segments)
        assert len(merged) == 1
        assert merged[0].data == b"aaaabbbb"
        assert merged[0].physical_offset == 0

    def test_gap_keeps_segments_apart(self):
        segments = [Segment(0, b"aaaa", 0), Segment(8, b"bbbb", 8)]
        merged = _merge_segments(segments)
        assert len(merged) == 2

    def test_wrap_boundary_not_merged(self):
        # A wrap: high physical offset followed by physical 0.
        segments = [Segment(1000, b"m" * 16, 1000), Segment(0, b"e" * 24, 1016)]
        merged = _merge_segments(segments)
        assert len(merged) == 2
        assert merged[1].physical_offset == 0

    def test_empty(self):
        assert _merge_segments([]) == []


class TestProposalQueueing:
    def test_proposals_during_takeover_are_queued_then_served(self):
        cluster = make(protocol="mu")
        cluster.kill_app(0)
        candidate = cluster.members[1]
        # Wait until node 1 starts its takeover but is not leader yet.
        cluster.sim.run_until(lambda: candidate.role is Role.CANDIDATE,
                              timeout=100 * MS)
        done = []
        candidate.propose(b"queued-during-takeover", done.append)
        assert candidate.role is not Role.LEADER
        cluster.sim.run_until(lambda: bool(done), timeout=200 * MS)
        assert done and done[0].committed

    def test_stopped_member_rejects_proposals(self):
        from repro import NotLeaderError
        cluster = make(protocol="mu")
        cluster.kill_app(2)
        with pytest.raises(NotLeaderError):
            cluster.members[2].propose(b"nope")


class TestCommitOrdering:
    def test_interleaved_batched_and_single_commits_stay_ordered(self):
        cluster = make(batching=True)
        order = []
        for i in range(120):
            cluster.propose(i.to_bytes(2, "big"),
                            lambda e: order.append(int.from_bytes(e.payload, "big")))
        cluster.run_for(5 * MS)
        assert order == list(range(120))

    def test_batch_children_inherit_commit_metadata(self):
        cluster = make(batching=True)
        done = []
        for i in range(50):
            cluster.propose(bytes([i]), done.append)
        cluster.run_for(5 * MS)
        assert len(done) == 50
        for entry in done:
            assert entry.committed
            assert entry.committed_at >= entry.submitted_at
            assert entry.latency_ns > 0

    def test_offsets_strictly_increase(self):
        cluster = make()
        done = []
        for i in range(30):
            cluster.propose(bytes([i]) * (1 + i % 5), done.append)
        cluster.run_for(5 * MS)
        offsets = [e.offset for e in done]
        assert offsets == sorted(offsets)
        assert len(set(offsets)) == len(offsets)


class TestEngineBookkeeping:
    def test_commit_offset_tracks_log(self):
        cluster = make()
        done = []
        for i in range(10):
            cluster.propose(b"x" * 32, done.append)
        cluster.run_for(5 * MS)
        leader = cluster.leader
        assert leader.commit_offset == leader.log.next_offset

    def test_member_stats_mean_latency(self):
        cluster = make()
        for i in range(10):
            cluster.propose(b"x")
        cluster.run_for(5 * MS)
        stats = cluster.leader.stats
        assert stats.commit_count == 10
        assert stats.mean_latency_ns > 0

    def test_descriptor_matches_applied_on_replicas(self):
        cluster = make()
        for i in range(10):
            cluster.propose(b"y" * 24)
        cluster.run_for(5 * MS)
        leader_end = cluster.leader.log.next_offset
        for member in cluster.members.values():
            if member.node_id == 0:
                continue
            assert member.log.next_offset == leader_end
