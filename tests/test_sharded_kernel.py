"""The sharded event kernel and the deterministic parallel runner.

* merged (time, shard, seq) execution order over synthetic lanes;
* epoch-barrier runs are event-identical however the window is sliced;
* a sharded (lanes-mode) consensus run reproduces the standalone
  per-shard packet-trace digests bit for bit;
* the process-parallel runner reproduces the serial digests and the
  epoch-reconciled switch counters (skipped on single-core runners --
  the spawn pool would only serialize there; tools/bench_sim.py still
  exercises the cross-process path on every runner).
"""

import multiprocessing
import os

import pytest

from repro.sim import ShardedKernel, SimulationError, Simulator
from repro.workloads.experiments import (
    group_scaling_specs,
    reconcile_epoch_counters,
    run_group_scaling_serial,
    run_shard_point,
)

MS = 1_000_000


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


class TestMergedOrder:
    def test_constructor_validates(self):
        with pytest.raises(SimulationError):
            ShardedKernel([])
        with pytest.raises(SimulationError):
            ShardedKernel([Simulator()], lookahead_ns=0)

    def test_time_shard_seq_order(self):
        lanes = [Simulator(), Simulator()]
        log = []
        lanes[0].schedule(10, log.append, (0, 10))
        lanes[1].schedule(10, log.append, (1, 10))
        lanes[1].schedule(5, log.append, (1, 5))
        lanes[0].schedule(20, log.append, (0, 20))
        kernel = ShardedKernel(lanes, lookahead_ns=1)
        executed = kernel.run_merged(20)
        assert executed == 4
        # Earliest time first; on equal times the lower shard index wins.
        assert log == [(1, 5), (0, 10), (1, 10), (0, 20)]
        # All lane clocks advanced to the window boundary.
        assert all(lane.now == 20 for lane in lanes)

    def test_origins_rebase(self):
        lanes = [Simulator(), Simulator()]
        lanes[0].run(until=100)  # lane 0 bootstrapped further
        kernel = ShardedKernel(lanes, lookahead_ns=1)
        assert kernel.origins == [100, 0]
        log = []
        lanes[0].schedule(7, log.append, "a")  # fires at local 107
        lanes[1].schedule(9, log.append, "b")  # fires at local 9
        kernel.run_merged(10)
        # Relative to origins, "a" (rel 7) precedes "b" (rel 9).
        assert log == ["a", "b"]
        kernel.rebase()
        assert kernel.origins == [110, 10]


class TestEpochBarriers:
    @staticmethod
    def _workload(lanes, log):
        """A self-rescheduling workload on each lane (like a closed loop)."""
        def tick(index, step):
            log.append((index, lanes[index].now))
            if lanes[index].now < 95:
                lanes[index].schedule(step, tick, index, step)
        for index, step in ((0, 7), (1, 11)):
            lanes[index].schedule(step, tick, index, step)

    def test_epoch_size_never_changes_behaviour(self):
        # The epoch size changes where barriers fall (and hence how the
        # lanes interleave globally) but must never change any *single
        # lane's* event sequence -- that is the conservative-lookahead
        # safety claim for disjoint shards.
        runs = {}
        for epoch_ns in (100, 25, 13, None):  # None -> the lookahead
            lanes = [Simulator(), Simulator()]
            log = []
            self._workload(lanes, log)
            kernel = ShardedKernel(lanes, lookahead_ns=5)
            kernel.run_window(100, epoch_ns=epoch_ns)
            per_lane = [[t for i, t in log if i == index]
                        for index in range(2)]
            runs[epoch_ns] = (per_lane, [lane.now for lane in lanes],
                              [lane.events_executed for lane in lanes])
        reference = runs[100]
        for epoch_ns, run in runs.items():
            assert run == reference, f"epoch_ns={epoch_ns} diverged"

    def test_on_epoch_fires_per_barrier(self):
        lanes = [Simulator()]
        kernel = ShardedKernel(lanes, lookahead_ns=5)
        seen = []
        count = kernel.run_window(100, epoch_ns=30,
                                  on_epoch=lambda k, t: seen.append((k, t)))
        assert count == 4
        assert seen == [(1, 30), (2, 60), (3, 90), (4, 100)]
        assert kernel.epochs_run == 4
        assert lanes[0].now == 100


class TestShardedConsensusDeterminism:
    def test_serial_lanes_reproduce_standalone_digests(self):
        specs = group_scaling_specs(2, warmup_ns=0.05 * MS,
                                    window_ns=0.2 * MS, epochs=4)
        serial = run_group_scaling_serial(specs)
        assert serial["epochs_run"] == 4
        digests = [shard["trace_digest"] for shard in serial["shards"]]
        assert len(set(digests)) == 2  # different seeds, different traffic
        for spec in specs:
            standalone = run_shard_point(spec)
            shard = serial["shards"][standalone["shard"]]
            assert standalone["trace_digest"] == shard["trace_digest"]
            assert standalone["epoch_counters"] == shard["epoch_counters"]
            assert standalone["commits"] == shard["commits"]
            # The sharding target rides on fusion staying engaged per shard.
            assert standalone["flight"]["flights_fused"] > 0

    @pytest.mark.skipif(_cores() < 2,
                        reason="process-parallel run needs multiple cores")
    def test_parallel_workers_reproduce_serial_digests(self):
        os.environ.setdefault("PYTHONHASHSEED", "0")
        specs = group_scaling_specs(2, warmup_ns=0.05 * MS,
                                    window_ns=0.2 * MS, epochs=4)
        serial = run_group_scaling_serial(specs)
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(processes=2) as pool:
            parallel = pool.map(run_shard_point, specs)
        assert ([shard["trace_digest"] for shard in serial["shards"]]
                == [shard["trace_digest"] for shard in parallel])
        assert (reconcile_epoch_counters(parallel)
                == serial["reconciled_counters"])
