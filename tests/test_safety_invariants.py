"""Safety invariants under randomized fault scenarios.

The properties that make it consensus:

* **Durability** — every entry reported committed to a client is applied
  on every live machine.
* **Total order** — all machines apply the same sequence of entries
  (prefix consistency while entries are still in flight).
* **Agreement with the client** — the clients' commit order is exactly
  the applied order.

Each scenario drives a cluster with proposals while killing the leader
(and sometimes a replica) at seed-chosen instants; the scenario itself is
deterministic per seed.
"""

import pytest

from repro import Cluster, ClusterConfig, Role
from repro.sim import SeededRng

MS = 1_000_000


def run_scenario(protocol: str, seed: int, kills: int):
    rng = SeededRng(seed)
    cluster = Cluster.build(ClusterConfig(num_replicas=4, protocol=protocol,
                                          seed=seed))
    cluster.await_ready()
    committed = []
    state = {"submitted": 0}
    target = 150

    def pump(entry=None):
        if entry is not None and entry.committed:
            committed.append(entry.payload)
        if state["submitted"] >= target:
            return
        value = state["submitted"].to_bytes(4, "big")
        state["submitted"] += 1
        try:
            cluster.propose(value, pump)
        except Exception:
            cluster.sim.schedule(200_000, lambda: pump(None))

    for _ in range(4):
        pump()

    # Scripted kills at random instants while the workload runs.
    victims = []
    kill_at = sorted(rng.uniform(1, 30) for _ in range(kills))
    next_leader_guess = 0
    for i, when_ms in enumerate(kill_at):
        if i == 0:
            victim = 0          # the bootstrap leader
        else:
            victim = 4          # a replica
        victims.append(victim)
        cluster.sim.schedule(when_ms * MS, cluster.kill_app, victim)

    ok = cluster.sim.run_until(lambda: len(committed) >= target,
                               timeout=3_000 * MS)
    cluster.run_for(10 * MS)  # drain applies
    assert ok, f"only {len(committed)}/{target} commits (seed {seed})"
    live = [m for m in cluster.members.values() if m.role is not Role.STOPPED]
    return cluster, committed, live


@pytest.mark.parametrize("protocol", ["mu", "p4ce"])
@pytest.mark.parametrize("seed,kills", [(101, 1), (202, 2)])
def test_safety_under_faults(protocol, seed, kills):
    cluster, committed, live = run_scenario(protocol, seed, kills)
    assert len(live) >= 3

    applied_per_machine = {
        m.node_id: [payload for _off, _epoch, payload in m.applied
                    if len(payload) == 4]  # filter lease/noise-free: all are 4B
        for m in live
    }
    # Total order: everyone applied the same sequence (prefix-consistent).
    sequences = list(applied_per_machine.values())
    longest = max(sequences, key=len)
    for node_id, sequence in applied_per_machine.items():
        assert sequence == longest[:len(sequence)], \
            f"machine {node_id} diverged (seed {seed})"
    # Durability + agreement: the clients' commit order is an exact
    # subsequence (in fact prefix-wise equal) of the applied order.
    applied_set = longest
    index = {}
    position = -1
    for payload in committed:
        assert payload in applied_set, \
            f"committed entry lost: {payload!r} (seed {seed})"
        current = applied_set.index(payload)
        assert current > position, \
            f"commit order disagrees with apply order (seed {seed})"
        position = current
    # No duplicate applies.
    assert len(longest) == len(set(longest)), "duplicate apply"
