"""Sanity checks on the calibration constants and derived formulas.

These tests pin the paper-quoted values so an accidental edit to
``params.py`` fails loudly instead of silently skewing every benchmark.
"""

import pytest

from repro import params


class TestPaperQuotedConstants:
    def test_link_rate_is_100_gbit(self):
        assert params.LINK_RATE_BPS == 100_000_000_000

    def test_rdma_timeout_is_131_us(self):
        # "timeout values ... of the form 4.096 x 2^x us"; 131.072 us = x=5.
        assert params.RDMA_TIMEOUT_NS == 131_072
        assert params.rdma_timeout_ns(5) == params.RDMA_TIMEOUT_NS

    def test_timeout_formula(self):
        assert params.rdma_timeout_ns(0) == 4_096
        assert params.rdma_timeout_ns(1) == 8_192

    def test_heartbeat_period_100us(self):
        assert params.HEARTBEAT_PERIOD_NS == 100_000

    def test_switch_reconfig_40ms(self):
        assert params.SWITCH_RECONFIG_NS == 40_000_000

    def test_parser_121_mpps(self):
        assert params.SWITCH_PARSER_PPS == 121_000_000
        assert params.SWITCH_PARSER_GAP_NS == pytest.approx(1e9 / 121e6)

    def test_numrecv_256_slots(self):
        assert params.NUMRECV_SLOTS == 256

    def test_16_pending_requests(self):
        assert params.MAX_PENDING_REQUESTS == 16

    def test_pmtu_1_kib(self):
        # "a write request may get split into multiple packets, each with
        # a payload of 1 KiB"
        assert params.ROCE_PMTU == 1024


class TestCalibrationAnchors:
    def test_p4ce_rate_anchor(self):
        """One (post, poll, decision) per consensus must give ~2.3 M/s."""
        per_op = (params.CPU_POST_SEND_NS + params.CPU_POLL_CQE_NS
                  + params.CPU_DECISION_NS)
        rate = 1e9 / per_op
        assert 2.2e6 <= rate <= 2.4e6

    def test_mu_rate_scaling(self):
        """n (post, poll) pairs per consensus give ~1.2 M / ~0.6 M."""
        pair = params.CPU_POST_SEND_NS + params.CPU_POLL_CQE_NS
        assert 1.1e6 <= 1e9 / (2 * pair) <= 1.3e6
        assert 0.55e6 <= 1e9 / (4 * pair) <= 0.65e6

    def test_serialization_line_rate(self):
        """A 1 KiB-payload RoCE frame yields ~11 GB/s of goodput."""
        frame = 14 + 20 + 8 + 12 + 16 + 1024 + 4 + 4  # headers + payload
        ns = params.serialization_ns(frame)
        goodput = 1024 / ns  # bytes per ns == GB/s
        assert 10.5 <= goodput <= 11.8

    def test_min_frame_padding(self):
        assert params.serialization_ns(1) == params.serialization_ns(64)

    def test_switch_crash_recovery_budget(self):
        """4 connection setups + timeout land near Table IV's 60 ms."""
        total = (4 * params.CONNECTION_SETUP_CPU_NS
                 + (params.RDMA_RETRY_COUNT + 1) * params.RDMA_TIMEOUT_NS)
        assert 50e6 <= total <= 70e6

    def test_mu_leader_change_budget(self):
        """Detection + two permission flips sit near Table IV's 0.9 ms."""
        total = (params.HEARTBEAT_MISS_LIMIT * params.HEARTBEAT_PERIOD_NS
                 + 2 * params.CPU_MODIFY_QP_NS)
        assert 0.6e6 <= total <= 1.2e6
