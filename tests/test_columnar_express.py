"""Columnar express kernels (fast lane 12) fidelity, property-based.

Hypothesis draws random run shapes -- closed-loop window depth, doorbell
batching on/off, and an optional mid-run link fault at a random time
with a random outage -- and each drawn scenario runs three times:

* **columnar** -- the full fast stack, lane 12 batching clean super-fused
  runs into column operations and bulk-hashing the wire digest;
* **per-hop** -- lanes 1-11 (the ``_x_*`` express stages replay every hop
  individually; lane 12 off), the reference lane 12 must match hop for
  hop;
* **slow** -- all lanes off, every event through the heap.

All three must agree on every observable: the SHA-256 wire-trace digest
(bytes + ICRC + timestamp of every frame on every link), the commit and
executed-event counts, the final register slabs (NumRecv and the credit
registers, cell for cell), and the *counter timeline* -- the device-wide
switch counter slab and register slabs sampled at every ``run_for``
barrier, so staged columnar state that leaked across a barrier (instead
of landing at the kernel-exit flush) is caught at the slice where it
first diverges, not just at the end.

The whole matrix runs on both register backends: the numpy array backend
and the pure-python list backend (``registers.NUMPY`` flipped, as
``REPRO_NO_NUMPY=1`` would), since lane 12 has distinct column kernels
for each.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import fastlane
from repro.faults.injector import FaultSchedule
from repro.switch import registers
from repro.workloads.experiments import (
    ClosedLoopDriver, build_cluster, install_trace_digest)

MS = 1_000_000

#: run_for slice length: short enough that several barriers land inside
#: the run (each one a kernel-exit columnar flush point), long enough to
#: keep the matrix fast.
_SLICE_NS = 0.1 * MS
_SLICES = 4


def _register_slabs(cluster):
    """Every stateful-register cell as plain ints (both backends)."""
    program = cluster.switch.program
    slabs = [[int(v) for v in program.numrecv._cells]]
    for reg in program.credits:
        slabs.append([int(v) for v in reg._cells])
    return slabs


def _run(lane: str, *, batching: bool, window: int, fault_at_ns,
         fault_outage_ns) -> dict:
    """One seeded run of the drawn scenario under one lane setting."""
    fastlane.flags.set_all(lane != "slow")
    fastlane.flags.columnar_express = (fastlane.flags.columnar_express
                                       and lane == "columnar")
    fastlane.reset_columnar()
    try:
        cluster = build_cluster("p4ce", 2, value_size=64, seed=7,
                                batching=batching)
        # The DigestTap (not a bare hash closure): lane 12 only engages
        # when every tap on the path can absorb virtual frames; a
        # foreign tap demands real frames and forces lane 9.
        digest = install_trace_digest(cluster)
        leader = cluster.await_ready()
        driver = ClosedLoopDriver(cluster, 64, window=window)
        driver.start()
        if fault_at_ns is not None:
            schedule = FaultSchedule(cluster)
            schedule.at_ns(fault_at_ns).partition_host(leader.node_id, False)
            schedule.at_ns(fault_at_ns + fault_outage_ns).heal_host(
                leader.node_id)
            schedule.arm()
        timeline = []
        for _ in range(_SLICES):
            cluster.run_for(_SLICE_NS)
            # A run_for barrier is a kernel-exit columnar flush: staged
            # lane-12 state must be indistinguishable from the slow
            # lane's live writes here, mid-run.
            timeline.append((cluster.switch.counter_totals(),
                             _register_slabs(cluster)))
        driver.stop()
        return {
            "digest": digest.hexdigest(),
            "commits": driver.commits,
            "events": cluster.sim.events_executed,
            "timeline": timeline,
            "slabs": _register_slabs(cluster),
            "hops_batched": fastlane.columnar["hops_batched"],
        }
    finally:
        fastlane.enable()


_scenarios = st.fixed_dictionaries({
    "batching": st.booleans(),
    "window": st.sampled_from((4, 32, 128)),
    # None -> a clean run; otherwise cut the leader's primary cable at a
    # random time and heal it after a random outage, so defusion, the
    # slow-path recovery, and re-engagement land at arbitrary points of
    # the super-fused window (including mid-drain fallbacks).
    "fault": st.one_of(
        st.none(),
        st.tuples(st.integers(50_000, 250_000),
                  st.integers(20_000, 120_000))),
})


@pytest.mark.parametrize("backend", ["numpy", "list"])
@settings(max_examples=6, deadline=None)
@given(scenario=_scenarios)
def test_columnar_matches_perhop_and_slow_lanes(backend, scenario):
    if backend == "numpy" and not registers.NUMPY:
        pytest.skip("numpy backend unavailable (REPRO_NO_NUMPY or missing)")
    saved = registers.NUMPY
    registers.NUMPY = backend == "numpy" and saved
    try:
        fault = scenario["fault"]
        kwargs = dict(batching=scenario["batching"],
                      window=scenario["window"],
                      fault_at_ns=None if fault is None else fault[0],
                      fault_outage_ns=None if fault is None else fault[1])
        columnar = _run("columnar", **kwargs)
        perhop = _run("perhop", **kwargs)
        slow = _run("slow", **kwargs)
    finally:
        registers.NUMPY = saved
    for key in ("digest", "commits", "events", "slabs", "timeline"):
        assert columnar[key] == perhop[key], key
        assert columnar[key] == slow[key], key
    if fault is None and scenario["window"] >= 32:
        # A deep clean run must actually exercise the columnar kernels,
        # or the equalities above prove nothing about lane 12 (shallow
        # windows may never pipeline enough flights for the super-fused
        # drain to form a batchable run).
        assert columnar["hops_batched"] > 0
        assert perhop["hops_batched"] == 0
