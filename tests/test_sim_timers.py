"""Unit tests for one-shot and periodic timers."""

from repro.sim import PeriodicTimer, Simulator, Timer


class TestTimer:
    def test_fires_once_after_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(100)
        sim.run()
        assert fired == [100]

    def test_restart_pushes_deadline(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(100)
        sim.run(until=50)
        timer.restart(100)
        sim.run()
        assert fired == [150]

    def test_stop_disarms(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(100)
        timer.stop()
        sim.run()
        assert fired == []

    def test_armed_property(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        timer.start(10)
        assert timer.armed
        sim.run()
        assert not timer.armed

    def test_restart_after_fire(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(10)
        sim.run()
        timer.start(10)
        sim.run()
        assert fired == [10, 20]


class TestPeriodicTimer:
    def test_fires_every_period(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, 100, lambda: fired.append(sim.now))
        timer.start()
        sim.run(until=350)
        assert fired == [100, 200, 300]

    def test_phase_offsets_first_firing(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, 100, lambda: fired.append(sim.now))
        timer.start(phase=7)
        sim.run(until=250)
        assert fired == [107, 207]

    def test_stop_ends_series(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, 100, lambda: fired.append(sim.now))
        timer.start()
        sim.run(until=150)
        timer.stop()
        sim.run(until=1_000)
        assert fired == [100]

    def test_callback_may_stop_the_timer(self):
        sim = Simulator()
        fired = []

        def cb():
            fired.append(sim.now)
            if len(fired) == 2:
                timer.stop()

        timer = PeriodicTimer(sim, 100, cb)
        timer.start()
        sim.run(until=10_000)
        assert fired == [100, 200]

    def test_double_start_is_noop(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, 100, lambda: fired.append(sim.now))
        timer.start()
        timer.start()
        sim.run(until=150)
        assert fired == [100]

    def test_rejects_nonpositive_period(self):
        sim = Simulator()
        import pytest
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 0, lambda: None)
