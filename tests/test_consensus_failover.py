"""Fail-over tests: the section V-E failure modes, end to end."""

import pytest

from repro import Cluster, ClusterConfig, Role

MS = 1_000_000


def make(protocol, num_replicas=2, **kw):
    kw.setdefault("seed", 11)
    cluster = Cluster.build(ClusterConfig(num_replicas=num_replicas,
                                          protocol=protocol, **kw))
    cluster.await_ready()
    return cluster


def commit_some(cluster, n=10, prefix=b"pre"):
    done = []
    for i in range(n):
        cluster.propose(prefix + bytes([i]), done.append)
    cluster.run_for(3 * MS)
    assert len(done) == n and all(e.committed for e in done)
    return done


class TestLeaderCrash:
    @pytest.mark.parametrize("protocol", ["mu", "p4ce"])
    def test_new_leader_elected_and_serves(self, protocol):
        cluster = make(protocol)
        commit_some(cluster)
        cluster.kill_app(0)
        ok = cluster.sim.run_until(
            lambda: cluster.leader is not None and cluster.leader.node_id == 1,
            timeout=200 * MS)
        assert ok
        done = []
        cluster.propose(b"after-failover", done.append)
        cluster.run_for(5 * MS)
        assert done and done[0].committed

    def test_mu_failover_time_matches_table4(self):
        cluster = make("mu", num_replicas=4)
        commit_some(cluster)
        start = cluster.sim.now
        cluster.kill_app(0)
        cluster.sim.run_until(
            lambda: cluster.leader is not None and cluster.leader.node_id == 1,
            timeout=200 * MS)
        elapsed_ms = (cluster.sim.now - start) / MS
        assert 0.4 <= elapsed_ms <= 2.5  # paper: 0.9 ms

    def test_p4ce_failover_time_matches_table4(self):
        cluster = make("p4ce", num_replicas=4)
        commit_some(cluster)
        start = cluster.sim.now
        cluster.kill_app(0)
        cluster.sim.run_until(
            lambda: cluster.leader is not None and cluster.leader.node_id == 1,
            timeout=200 * MS)
        elapsed_ms = (cluster.sim.now - start) / MS
        assert 40 <= elapsed_ms <= 46  # paper: 40.9 ms

    @pytest.mark.parametrize("protocol", ["mu", "p4ce"])
    def test_committed_entries_survive_failover(self, protocol):
        cluster = make(protocol)
        pre = commit_some(cluster, n=15)
        cluster.kill_app(0)
        cluster.sim.run_until(
            lambda: cluster.leader is not None and cluster.leader.node_id == 1,
            timeout=200 * MS)
        done = []
        cluster.propose(b"post", done.append)
        cluster.run_for(5 * MS)
        new_leader = cluster.leader
        payloads = [p for _o, _e, p in new_leader.applied]
        for entry in pre:
            assert entry.payload in payloads
        assert b"post" in payloads

    def test_old_leader_cannot_write_after_demotion(self):
        cluster = make("mu")
        commit_some(cluster)
        old = cluster.members[0]
        cluster.kill_app(0)
        cluster.sim.run_until(
            lambda: cluster.leader is not None and cluster.leader.node_id == 1,
            timeout=200 * MS)
        # All write permissions for the old leader are revoked.
        old_ip = old.primary_ip.value
        for member in cluster.members.values():
            if member.node_id == 0:
                continue
            for qp in member.granted_qps.get(old_ip, []):
                assert not qp.remote_write_allowed

    def test_epoch_increases_on_view_change(self):
        cluster = make("mu")
        epoch_before = cluster.leader.epoch
        cluster.kill_app(0)
        cluster.sim.run_until(
            lambda: cluster.leader is not None and cluster.leader.node_id == 1,
            timeout=200 * MS)
        assert cluster.leader.epoch > epoch_before

    def test_async_reconfig_matches_mu_failover(self):
        """Lesson 3: with asynchronous switch reconfiguration, P4CE's
        leader change costs the same as Mu's."""
        times = {}
        for protocol, async_mode in (("mu", False), ("p4ce", True)):
            cluster = make(protocol, num_replicas=4,
                           async_reconfig=async_mode)
            commit_some(cluster)
            start = cluster.sim.now
            cluster.kill_app(0)
            cluster.sim.run_until(
                lambda: cluster.leader is not None
                and cluster.leader.node_id == 1, timeout=300 * MS)
            times[protocol] = (cluster.sim.now - start) / MS
            if protocol == "p4ce":
                # Acceleration comes back once the group is programmed.
                cluster.sim.run_until(
                    lambda: cluster.leader.comm_mode == "switch",
                    timeout=300 * MS)
                assert cluster.leader.comm_mode == "switch"
        assert abs(times["p4ce"] - times["mu"]) < 1.0, times

    def test_cascading_leader_failures(self):
        cluster = make("mu", num_replicas=4)
        commit_some(cluster)
        cluster.kill_app(0)
        cluster.sim.run_until(
            lambda: cluster.leader is not None and cluster.leader.node_id == 1,
            timeout=200 * MS)
        commit_some(cluster, prefix=b"v1-")
        cluster.kill_app(1)
        cluster.sim.run_until(
            lambda: cluster.leader is not None and cluster.leader.node_id == 2,
            timeout=200 * MS)
        done = []
        cluster.propose(b"third-view", done.append)
        cluster.run_for(5 * MS)
        assert done and done[0].committed


class TestReplicaCrash:
    @pytest.mark.parametrize("protocol", ["mu", "p4ce"])
    def test_commits_continue_after_replica_death(self, protocol):
        cluster = make(protocol, num_replicas=4)
        commit_some(cluster)
        cluster.kill_app(4)  # a follower
        cluster.run_for(60 * MS)
        done = []
        for i in range(5):
            cluster.propose(bytes([i]), done.append)
        cluster.run_for(5 * MS)
        assert len(done) == 5 and all(e.committed for e in done)
        assert cluster.leader.node_id == 0  # no view change

    def test_p4ce_reconfigures_group_excluding_dead_replica(self):
        cluster = make("p4ce", num_replicas=4)
        commit_some(cluster)
        reconfigured = []
        cluster.on_group_reconfigured = reconfigured.append
        cluster.kill_app(4)
        cluster.sim.run_until(lambda: reconfigured, timeout=200 * MS)
        assert reconfigured
        group = next(iter(cluster.control_plane.groups.values()))
        assert group.replica_count == 3

    def test_mu_excludes_replica_from_direct_plane(self):
        cluster = make("mu", num_replicas=4)
        commit_some(cluster)
        cluster.kill_app(4)
        cluster.sim.run_until(
            lambda: 4 not in cluster.leader.direct.paths, timeout=200 * MS)
        assert 4 not in cluster.leader.direct.paths


class TestSwitchCrash:
    @pytest.mark.parametrize("protocol", ["mu", "p4ce"])
    def test_recovery_over_backup_route(self, protocol):
        cluster = make(protocol, num_replicas=4)
        commit_some(cluster)
        cluster.crash_switch()
        done = []
        for i in range(5):
            cluster.propose(bytes([i]), done.append)
        cluster.run_for(200 * MS)
        assert len(done) == 5 and all(e.committed for e in done)
        # The leader kept its role; replication now uses backup paths.
        assert cluster.leader.node_id == 0
        routes = {p.route for p in cluster.leader.direct.paths.values()
                  if p.usable}
        assert routes == {"backup"}

    def test_p4ce_falls_back_to_direct_mode(self):
        cluster = make("p4ce", num_replicas=2)
        commit_some(cluster)
        cluster.crash_switch()
        cluster.propose(b"through-the-dark", lambda e: None)
        cluster.sim.run_until(lambda: cluster.members[0].comm_mode == "direct",
                              timeout=300 * MS)
        assert cluster.members[0].comm_mode == "direct"

    def test_p4ce_regains_acceleration_when_switch_returns(self):
        cluster = make("p4ce", num_replicas=2)
        commit_some(cluster)
        cluster.crash_switch()
        cluster.propose(b"x", lambda e: None)
        cluster.sim.run_until(lambda: cluster.members[0].comm_mode == "direct",
                              timeout=300 * MS)
        cluster.revive_switch()
        ok = cluster.sim.run_until(
            lambda: cluster.members[0].comm_mode == "switch", timeout=300 * MS)
        assert ok
        done = []
        cluster.propose(b"re-accelerated", done.append)
        cluster.run_for(5 * MS)
        assert done and done[0].committed

    def test_no_view_change_on_switch_crash(self):
        """Heartbeats run over both routes, so the leader stays alive in
        everyone's view when the primary switch dies."""
        cluster = make("mu", num_replicas=2)
        commit_some(cluster)
        views = {m.node_id: m.stats.view_changes for m in cluster.members.values()}
        cluster.crash_switch()
        cluster.run_for(100 * MS)
        for member in cluster.members.values():
            assert member.stats.view_changes == views[member.node_id]
