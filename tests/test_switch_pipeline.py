"""Tests for the switch device: forwarding, replication, parsers, CPU port."""

from repro import params
from repro.net import (
    AddressAllocator,
    EthernetHeader,
    Ipv4Address,
    Ipv4Header,
    MacAddress,
    Packet,
    Port,
    UdpHeader,
    connect,
)
from repro.sim import Simulator
from repro.switch import (
    IngressVerdict,
    L3ForwardProgram,
    MulticastCopy,
    Switch,
    SwitchProgram,
)


class Sink:
    def __init__(self):
        self.received = []

    def handle_packet(self, port, packet):
        self.received.append(packet)


def make_switch(sim, num_hosts=3):
    alloc = AddressAllocator()
    smac, sip = alloc.switch_address()
    switch = Switch(sim, "sw", smac, sip)
    sinks, ips, macs = [], [], []
    for _ in range(num_hosts):
        mac, ip = alloc.next_host()
        sink = Sink()
        port = Port(sink, f"host{len(sinks)}")
        sw_port = switch.free_port()
        connect(sim, port, sw_port)
        switch.add_host_route(ip, sw_port.index, mac)
        sinks.append((sink, port))
        ips.append(ip)
        macs.append(mac)
    return switch, sinks, ips, macs


def udp_packet(src_ip, dst_ip, dst_port=9999, payload=b"hi"):
    pkt = Packet(EthernetHeader(MacAddress(0xFE), MacAddress(0x01)),
                 Ipv4Header(src_ip, dst_ip),
                 UdpHeader(1234, dst_port), [], payload)
    return pkt.finalize()


class TestL3Forwarding:
    def test_forwards_by_destination_ip(self):
        sim = Simulator()
        switch, sinks, ips, macs = make_switch(sim)
        switch.load_program(L3ForwardProgram())
        (sink0, port0), (sink1, _p1), _ = sinks
        port0.send(udp_packet(ips[0], ips[1]))
        sim.run()
        assert len(sink1.received) == 1
        assert sink0.received == []

    def test_rewrites_macs(self):
        sim = Simulator()
        switch, sinks, ips, macs = make_switch(sim)
        switch.load_program(L3ForwardProgram())
        _, (sink1, _), _ = sinks
        sinks[0][1].send(udp_packet(ips[0], ips[1]))
        sim.run()
        received = sink1.received[0]
        assert received.eth.src == switch.mac
        assert received.eth.dst == macs[1]

    def test_unknown_destination_dropped(self):
        sim = Simulator()
        switch, sinks, ips, _ = make_switch(sim)
        switch.load_program(L3ForwardProgram())
        sinks[0][1].send(udp_packet(ips[0], Ipv4Address.parse("9.9.9.9")))
        sim.run()
        assert switch.drops == 1

    def test_pipeline_latency_applied(self):
        sim = Simulator()
        switch, sinks, ips, _ = make_switch(sim)
        switch.load_program(L3ForwardProgram())
        pkt = udp_packet(ips[0], ips[1])
        sinks[0][1].send(pkt)
        sim.run()
        wire = params.serialization_ns(pkt.wire_size) + params.LINK_PROPAGATION_NS
        minimum = 2 * wire + params.SWITCH_PIPELINE_LATENCY_NS
        assert sim.now >= minimum

    def test_powered_off_switch_blackholes(self):
        sim = Simulator()
        switch, sinks, ips, _ = make_switch(sim)
        switch.load_program(L3ForwardProgram())
        switch.power_off()
        sinks[0][1].send(udp_packet(ips[0], ips[1]))
        sim.run()
        assert sinks[1][0].received == []


class ReplicateProgram(SwitchProgram):
    """Test program: multicast everything to group 1, tag rid in egress."""

    name = "replicate-test"

    def on_ingress(self, in_port, packet):
        return IngressVerdict.multicast(1)

    def on_egress(self, out_port, replication_id, packet):
        packet.meta["rid_seen"] = replication_id
        return replication_id != 99  # rid 99 is dropped in egress


class TestReplication:
    def test_multicast_copies_to_each_port(self):
        sim = Simulator()
        switch, sinks, ips, _ = make_switch(sim)
        switch.load_program(ReplicateProgram())
        switch.multicast.create_group(1, [MulticastCopy(1, 10),
                                          MulticastCopy(2, 11)])
        sinks[0][1].send(udp_packet(ips[0], ips[1]))
        sim.run()
        assert len(sinks[1][0].received) == 1
        assert len(sinks[2][0].received) == 1
        assert sinks[1][0].received[0].meta["rid_seen"] == 10
        assert sinks[2][0].received[0].meta["rid_seen"] == 11

    def test_copies_are_independent_objects(self):
        sim = Simulator()
        switch, sinks, ips, _ = make_switch(sim)
        switch.load_program(ReplicateProgram())
        switch.multicast.create_group(1, [MulticastCopy(1, 10),
                                          MulticastCopy(2, 11)])
        sinks[0][1].send(udp_packet(ips[0], ips[1]))
        sim.run()
        a = sinks[1][0].received[0]
        b = sinks[2][0].received[0]
        assert a is not b
        assert a.eth is not b.eth

    def test_egress_drop(self):
        sim = Simulator()
        switch, sinks, ips, _ = make_switch(sim)
        switch.load_program(ReplicateProgram())
        switch.multicast.create_group(1, [MulticastCopy(1, 10),
                                          MulticastCopy(2, 99)])
        sinks[0][1].send(udp_packet(ips[0], ips[1]))
        sim.run()
        assert len(sinks[1][0].received) == 1
        assert sinks[2][0].received == []
        assert switch.drops == 1

    def test_missing_group_drops(self):
        sim = Simulator()
        switch, sinks, ips, _ = make_switch(sim)
        switch.load_program(ReplicateProgram())
        sinks[0][1].send(udp_packet(ips[0], ips[1]))
        sim.run()
        assert switch.drops == 1


class ToCpuProgram(SwitchProgram):
    name = "tocpu-test"

    def on_ingress(self, in_port, packet):
        return IngressVerdict.to_cpu()


class TestCpuPort:
    def test_redirect_reaches_handler_with_delay(self):
        sim = Simulator()
        switch, sinks, ips, _ = make_switch(sim)
        switch.load_program(ToCpuProgram())
        seen = []
        switch.cpu_handler = lambda port, pkt: seen.append((port, sim.now))
        sinks[0][1].send(udp_packet(ips[0], ips[1]))
        sim.run()
        assert len(seen) == 1
        assert seen[0][0] == 0  # ingress port index
        assert seen[0][1] >= params.CONTROL_PLANE_PKT_NS

    def test_inject_routes_by_l3(self):
        sim = Simulator()
        switch, sinks, ips, _ = make_switch(sim)
        switch.load_program(L3ForwardProgram())
        pkt = udp_packet(switch.ip, ips[2])
        assert switch.inject(pkt) is True
        sim.run()
        assert len(sinks[2][0].received) == 1


class TestParserCapacity:
    def test_ingress_parser_serializes_packets(self):
        """121 Mpps per parser: packets on one port queue behind each
        other by the parser gap."""
        sim = Simulator()
        switch, sinks, ips, _ = make_switch(sim)
        switch.load_program(L3ForwardProgram())
        times = []
        orig = switch._run_ingress

        def spy(in_port, packet):
            times.append(sim.now)
            orig(in_port, packet)

        switch._run_ingress = spy
        now = sim.now
        pkt = udp_packet(ips[0], ips[1], payload=b"")
        # Deliver two frames at the same instant, bypassing the link.
        switch.handle_packet(switch.ports[0], pkt)
        switch.handle_packet(switch.ports[0], pkt.copy())
        sim.run()
        assert len(times) == 2
        assert abs((times[1] - times[0]) - params.SWITCH_PARSER_GAP_NS) < 1e-6

    def test_different_ports_parse_in_parallel(self):
        sim = Simulator()
        switch, sinks, ips, _ = make_switch(sim)
        switch.load_program(L3ForwardProgram())
        times = []
        orig = switch._run_ingress

        def spy(in_port, packet):
            times.append(sim.now)
            orig(in_port, packet)

        switch._run_ingress = spy
        pkt = udp_packet(ips[0], ips[2])
        switch.handle_packet(switch.ports[0], pkt)
        switch.handle_packet(switch.ports[1], pkt.copy())
        sim.run()
        assert times[0] == times[1]
