"""Unit tests for packets and links."""

import pytest

from repro import params
from repro.net import (
    EthernetHeader,
    Ipv4Address,
    Ipv4Header,
    Link,
    MacAddress,
    Packet,
    Port,
    UdpHeader,
    connect,
)
from repro.rdma.headers import Bth, Reth
from repro.rdma.opcodes import Opcode
from repro.sim import Simulator


def make_roce_packet(payload=b"x" * 64):
    eth = EthernetHeader(MacAddress(1), MacAddress(2))
    ipv4 = Ipv4Header(Ipv4Address(1), Ipv4Address(2))
    udp = UdpHeader(49152, params.ROCE_UDP_PORT)
    bth = Bth(Opcode.RDMA_WRITE_ONLY, 0x12, 7, ack_req=True)
    reth = Reth(0x1000, 0xABCD, len(payload))
    pkt = Packet(eth, ipv4, udp, [bth, reth], payload, has_icrc=True)
    pkt.finalize()
    return pkt


class TestPacket:
    def test_wire_size_is_byte_accurate(self):
        pkt = make_roce_packet(b"x" * 64)
        # 14 eth + 20 ip + 8 udp + 12 bth + 16 reth + 64 payload + 4 icrc
        # + 4 fcs
        assert pkt.wire_size == 14 + 20 + 8 + 12 + 16 + 64 + 4 + 4

    def test_finalize_sets_lengths(self):
        pkt = make_roce_packet(b"x" * 64)
        assert pkt.udp.length == 8 + 12 + 16 + 64 + 4
        assert pkt.ipv4.total_length == 20 + pkt.udp.length

    def test_pack_parse_roundtrip_l4(self):
        pkt = make_roce_packet()
        parsed = Packet.parse(pkt.pack())
        assert parsed.ipv4.src == pkt.ipv4.src
        assert parsed.udp.dst_port == params.ROCE_UDP_PORT
        # Upper headers stay as raw payload at the net layer.
        assert len(parsed.payload) == 12 + 16 + 64 + 4

    def test_copy_deep_copies_headers_shares_payload(self):
        pkt = make_roce_packet()
        clone = pkt.copy()
        clone.upper[0].psn = 99
        clone.ipv4.dst = Ipv4Address(42)
        assert pkt.upper[0].psn == 7
        assert pkt.ipv4.dst == Ipv4Address(2)
        assert clone.payload is pkt.payload

    def test_copy_carries_meta(self):
        pkt = make_roce_packet()
        pkt.meta["x"] = 1
        assert pkt.copy().meta["x"] == 1


class TestCopyOnWriteAliasing:
    """The multicast fan-out guarantee (documented in ``Packet.copy``):
    after a packet is replicated N ways, rewriting one replica's headers
    is invisible in every sibling and in the original -- with the
    copy-on-write lane on (shared frozen headers, thaw on write) or off
    (eager deep copies)."""

    @pytest.fixture(params=[True, False], ids=["cow", "eager"])
    def cow_lane(self, request):
        from repro import fastlane
        saved = fastlane.flags.cow_packets
        fastlane.flags.cow_packets = request.param
        yield request.param
        fastlane.flags.cow_packets = saved

    def test_fanout_rewrites_invisible_to_siblings(self, cow_lane):
        pkt = make_roce_packet()
        stamped = pkt.pack()
        replicas = [pkt.copy() for _ in range(5)]
        for i, rep in enumerate(replicas):
            rep.ipv4.dst = Ipv4Address(100 + i)
            rep.upper[0].dest_qp = 0x100 + i
            rep.upper[0].psn = 1000 + i
            rep.upper[1].virtual_address = 0x2000 + 0x10 * i
            rep.upper[1].r_key = 0xB000 + i
            rep.finalize()
        # The original saw none of the rewrites.
        assert pkt.ipv4.dst == Ipv4Address(2)
        assert pkt.upper[0].dest_qp == 0x12 and pkt.upper[0].psn == 7
        assert pkt.upper[1].virtual_address == 0x1000
        assert pkt.upper[1].r_key == 0xABCD
        assert pkt.pack() == stamped
        # Each replica kept exactly its own rewrite (no cross-talk).
        for i, rep in enumerate(replicas):
            assert rep.ipv4.dst == Ipv4Address(100 + i)
            assert rep.upper[0].dest_qp == 0x100 + i
            assert rep.upper[0].psn == 1000 + i
            assert rep.upper[1].virtual_address == 0x2000 + 0x10 * i
            assert rep.upper[1].r_key == 0xB000 + i
        assert len({rep.pack() for rep in replicas}) == len(replicas)

    def test_untouched_replica_packs_identically(self, cow_lane):
        pkt = make_roce_packet()
        clone = pkt.copy()
        assert clone.pack() == pkt.pack()
        assert clone.wire_size == pkt.wire_size

    def test_rewriting_original_invisible_in_replicas(self, cow_lane):
        pkt = make_roce_packet()
        replicas = [pkt.copy() for _ in range(3)]
        pkt.upper[0].psn = 4242
        pkt.ipv4.dst = Ipv4Address(77)
        for rep in replicas:
            assert rep.upper[0].psn == 7
            assert rep.ipv4.dst == Ipv4Address(2)

    def test_payload_replacement_does_not_alias(self, cow_lane):
        pkt = make_roce_packet()
        clone = pkt.copy()
        clone.payload = b"y" * 64
        clone.finalize()
        assert pkt.payload == b"x" * 64
        assert clone.payload == b"y" * 64


class Sink:
    def __init__(self):
        self.received = []

    def handle_packet(self, port, packet):
        self.received.append((port, packet))


class TestLink:
    def test_delivery_with_serialization_and_propagation(self):
        sim = Simulator()
        a, b = Sink(), Sink()
        pa, pb = Port(a, "a"), Port(b, "b")
        link = connect(sim, pa, pb, rate_bps=100_000_000_000,
                       propagation_ns=200)
        pkt = make_roce_packet(b"x" * 64)
        pa.send(pkt)
        sim.run()
        assert len(b.received) == 1
        expected = params.serialization_ns(pkt.wire_size) + 200
        assert abs(sim.now - expected) < 1e-6

    def test_back_to_back_frames_queue_fifo(self):
        sim = Simulator()
        a, b = Sink(), Sink()
        pa, pb = Port(a, "a"), Port(b, "b")
        connect(sim, pa, pb)
        for _ in range(10):
            pa.send(make_roce_packet(b"y" * 1024))
        sim.run()
        assert len(b.received) == 10
        ser = params.serialization_ns(make_roce_packet(b"y" * 1024).wire_size)
        assert abs(sim.now - (10 * ser + params.LINK_PROPAGATION_NS)) < 1e-6

    def test_full_duplex_directions_independent(self):
        sim = Simulator()
        a, b = Sink(), Sink()
        pa, pb = Port(a, "a"), Port(b, "b")
        connect(sim, pa, pb)
        pa.send(make_roce_packet())
        pb.send(make_roce_packet())
        sim.run()
        assert len(a.received) == 1 and len(b.received) == 1

    def test_down_link_drops_everything(self):
        sim = Simulator()
        a, b = Sink(), Sink()
        pa, pb = Port(a, "a"), Port(b, "b")
        link = connect(sim, pa, pb)
        link.set_down()
        pa.send(make_roce_packet())
        sim.run()
        assert b.received == []
        assert link.stats_from(pa).dropped == 1

    def test_inflight_frame_lost_when_link_goes_down(self):
        sim = Simulator()
        a, b = Sink(), Sink()
        pa, pb = Port(a, "a"), Port(b, "b")
        link = connect(sim, pa, pb)
        pa.send(make_roce_packet())
        sim.schedule(1, link.set_down)  # before arrival
        sim.run()
        assert b.received == []

    def test_byte_counters(self):
        sim = Simulator()
        a, b = Sink(), Sink()
        pa, pb = Port(a, "a"), Port(b, "b")
        link = connect(sim, pa, pb)
        pkt = make_roce_packet()
        pa.send(pkt)
        sim.run()
        stats = link.stats_from(pa)
        assert stats.frames == 1
        assert stats.bytes == pkt.wire_size

    def test_min_frame_padding_in_serialization(self):
        # A tiny frame still occupies at least 64 B + 20 B overhead.
        assert params.serialization_ns(10) == params.serialization_ns(64)

    def test_cannot_double_connect_port(self):
        sim = Simulator()
        pa, pb, pc = Port(None, "a"), Port(None, "b"), Port(None, "c")
        connect(sim, pa, pb)
        with pytest.raises(ValueError):
            connect(sim, pa, pc)

    def test_unplugged_port_send_returns_false(self):
        port = Port(None, "x")
        assert port.send(make_roce_packet()) is False
