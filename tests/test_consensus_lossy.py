"""Consensus under packet loss: the transport heals, commits never lie.

Loss on the switch path is the nastiest case: scattered copies and
aggregated ACKs can vanish independently, retransmissions re-scatter,
replicas re-ACK duplicates, and the NumRecv counters see messy
sequences.  Whatever happens, safety must hold; liveness may degrade to
fallback but must recover.
"""

import pytest

from repro import Cluster, ClusterConfig, Role

MS = 1_000_000


def make(protocol, loss_node, probability, **kw):
    kw.setdefault("seed", 55)
    cluster = Cluster.build(ClusterConfig(num_replicas=2, protocol=protocol,
                                          **kw))
    cluster.await_ready()
    link = cluster.hosts[loss_node].nic.port.link
    link.drop_probability = probability
    return cluster


@pytest.mark.parametrize("protocol", ["mu", "p4ce"])
@pytest.mark.parametrize("loss", [0.01, 0.05])
def test_commits_survive_leader_link_loss(protocol, loss):
    cluster = make(protocol, 0, loss)
    done = []
    for i in range(60):
        cluster.propose(i.to_bytes(2, "big"), done.append)
    cluster.run_for(400 * MS)
    committed = [e for e in done if e.committed]
    assert len(committed) == 60
    # Order preserved end to end despite retransmissions.
    values = [int.from_bytes(e.payload, "big") for e in committed]
    assert values == sorted(values)
    # Applied state converges everywhere.
    cluster.hosts[0].nic.port.link.drop_probability = 0.0
    cluster.run_for(50 * MS)
    live = [m for m in cluster.members.values() if m.role is not Role.STOPPED]
    reference = [p for _o, _e, p in cluster.members[0].applied]
    for member in live:
        assert [p for _o, _e, p in member.applied] == reference


@pytest.mark.parametrize("protocol", ["mu", "p4ce"])
def test_replica_link_loss_heals(protocol):
    cluster = make(protocol, 2, 0.05)
    done = []
    for i in range(60):
        cluster.propose(bytes([i]), done.append)
    cluster.run_for(400 * MS)
    assert len([e for e in done if e.committed]) == 60
    cluster.hosts[2].nic.port.link.drop_probability = 0.0
    # The lossy replica eventually holds the full log (catch-up or
    # retransmission, depending on what was lost).
    ok = cluster.sim.run_until(
        lambda: len(cluster.members[2].applied) >= 60, timeout=2_000 * MS)
    assert ok


def test_p4ce_duplicate_acks_do_not_forge_quorum():
    """Retransmission-induced duplicate ACKs bump NumRecv; the threshold
    compare is equality so late duplicates cannot re-trigger forwards for
    old PSN slots in a way that commits an unreplicated entry.  Safety
    witness: everything reported committed is on every live machine."""
    cluster = make("p4ce", 0, 0.03, seed=56)
    done = []
    for i in range(80):
        cluster.propose(i.to_bytes(2, "big"), done.append)
    cluster.run_for(500 * MS)
    committed = [e for e in done if e.committed]
    assert len(committed) == 80
    cluster.hosts[0].nic.port.link.drop_probability = 0.0
    cluster.run_for(50 * MS)
    for member in cluster.members.values():
        payloads = {p for _o, _e, p in member.applied}
        for entry in committed:
            assert entry.payload in payloads, \
                f"committed entry missing on m{member.node_id}"
