"""Unit tests for completion queues and the host verbs surface."""

import pytest

from repro import params
from repro.rdma import (
    Access,
    CompletionQueue,
    QpStateError,
    WcStatus,
    WorkCompletion,
    WorkRequest,
    WrOpcode,
)


def wc(wr_id=1, status=WcStatus.SUCCESS):
    return WorkCompletion(wr_id, status, "rdma_write", 64, 0x10, 0.0)


class TestCompletionQueue:
    def test_poll_drains_fifo(self):
        cq = CompletionQueue()
        for i in range(5):
            cq.push(wc(i))
        first = cq.poll(max_entries=3)
        assert [w.wr_id for w in first] == [0, 1, 2]
        assert [w.wr_id for w in cq.poll()] == [3, 4]
        assert cq.poll() == []

    def test_poll_one(self):
        cq = CompletionQueue()
        assert cq.poll_one() is None
        cq.push(wc(9))
        assert cq.poll_one().wr_id == 9

    def test_callback_fires_on_push(self):
        cq = CompletionQueue()
        seen = []
        cq.on_completion = seen.append
        cq.push(wc())
        assert len(seen) == 1

    def test_overflow_flag(self):
        cq = CompletionQueue(capacity=2)
        for i in range(3):
            cq.push(wc(i))
        assert cq.overflowed
        assert len(cq) == 2

    def test_wc_ok_property(self):
        assert wc().ok
        assert not wc(status=WcStatus.RETRY_EXCEEDED).ok


class TestHostVerbs:
    def test_post_send_charges_cpu(self, two_hosts):
        qp, cq, _sqp, _scq, region = two_hosts.connected_qp_pair()
        busy_before = two_hosts.client.cpu.busy_time
        two_hosts.client.post_write(qp, b"x", region.addr, region.r_key)
        two_hosts.sim.run(until=two_hosts.sim.now + 1_000_000)
        assert two_hosts.client.cpu.busy_time - busy_before >= params.CPU_POST_SEND_NS

    def test_handle_completion_charges_poll_cost(self, two_hosts):
        host = two_hosts.client
        busy_before = host.cpu.busy_time
        seen = []
        host.handle_completion(wc(), seen.append)
        two_hosts.sim.run(until=two_hosts.sim.now + 10_000)
        assert seen
        assert host.cpu.busy_time - busy_before == params.CPU_POLL_CQE_NS

    def test_wr_ids_unique(self, two_hosts):
        ids = {two_hosts.client.fresh_wr_id() for _ in range(100)}
        assert len(ids) == 100

    def test_post_on_dead_host_is_noop(self, two_hosts):
        qp, cq, _sqp, _scq, region = two_hosts.connected_qp_pair()
        two_hosts.client.crash()
        done = []
        cq.on_completion = done.append
        two_hosts.client.post_write(qp, b"x", region.addr, region.r_key)
        two_hosts.sim.run(until=two_hosts.sim.now + 2_000_000)
        assert done == []

    def test_post_on_unconnected_qp_raises(self, two_hosts):
        qp = two_hosts.client.create_qp(two_hosts.client.create_cq())
        with pytest.raises(QpStateError):
            two_hosts.client.nic.post_send(
                qp, WorkRequest(1, WrOpcode.RDMA_WRITE, data=b"x"))

    def test_send_queue_overflow_is_shed_not_raised(self, two_hosts):
        qp, cq, _sqp, _scq, region = two_hosts.connected_qp_pair()
        qp.max_send_wr = 8
        two_hosts.link.set_down()  # nothing completes: the queue backs up
        for _ in range(30):
            two_hosts.client.post_write(qp, b"y" * 8, region.addr, region.r_key)
        two_hosts.sim.run(until=two_hosts.sim.now + 100_000)
        assert two_hosts.client.send_queue_overflows > 0

    def test_modify_qp_costs_and_applies(self, two_hosts):
        qp, cq, sqp, _scq, region = two_hosts.connected_qp_pair()
        done = []
        start = two_hosts.sim.now
        two_hosts.server.modify_qp_permissions(
            sqp, remote_write=False, on_done=lambda: done.append(two_hosts.sim.now))
        two_hosts.sim.run(until=two_hosts.sim.now + 1_000_000)
        assert done and done[0] - start >= params.CPU_MODIFY_QP_NS
        assert not sqp.remote_write_allowed

    def test_crash_powers_off_all_nics(self, two_hosts):
        two_hosts.server.crash()
        assert not two_hosts.server.nic.powered
        assert not two_hosts.server.alive
