"""Integration tests for the RNIC engine over a back-to-back link."""

import pytest

from repro import params
from repro.rdma import (
    Access,
    QpState,
    WcStatus,
    WorkRequest,
    WrOpcode,
)


def drain(rig, ms=2.0):
    rig.sim.run(until=rig.sim.now + ms * 1e6)


class TestWrite:
    def test_single_packet_write(self, two_hosts):
        qp, cq, _sqp, _scq, region = two_hosts.connected_qp_pair()
        done = []
        cq.on_completion = done.append
        two_hosts.client.post_write(qp, b"hello", region.addr, region.r_key)
        drain(two_hosts)
        assert len(done) == 1 and done[0].ok
        assert region.read(region.addr, 5) == b"hello"

    def test_write_at_offset(self, two_hosts):
        qp, cq, _sqp, _scq, region = two_hosts.connected_qp_pair()
        done = []
        cq.on_completion = done.append
        two_hosts.client.post_write(qp, b"abc", region.addr + 1000, region.r_key)
        drain(two_hosts)
        assert region.read(region.addr + 1000, 3) == b"abc"

    def test_multi_packet_write_segmented_by_pmtu(self, two_hosts):
        qp, cq, _sqp, _scq, region = two_hosts.connected_qp_pair()
        done = []
        cq.on_completion = done.append
        payload = bytes(range(256)) * 20  # 5120 B -> 5 packets at PMTU 1024
        sent_before = two_hosts.client.nic.packets_sent
        two_hosts.client.post_write(qp, payload, region.addr, region.r_key)
        drain(two_hosts)
        assert done[0].ok
        assert region.read(region.addr, len(payload)) == payload
        assert two_hosts.client.nic.packets_sent - sent_before == 5

    def test_zero_length_write_completes(self, two_hosts):
        qp, cq, _sqp, _scq, region = two_hosts.connected_qp_pair()
        done = []
        cq.on_completion = done.append
        two_hosts.client.post_write(qp, b"", region.addr, region.r_key)
        drain(two_hosts)
        assert done[0].ok

    def test_bad_rkey_naks_and_errors_qp(self, two_hosts):
        qp, cq, _sqp, _scq, region = two_hosts.connected_qp_pair()
        done = []
        cq.on_completion = done.append
        two_hosts.client.post_write(qp, b"x", region.addr, region.r_key ^ 1)
        drain(two_hosts)
        assert done[0].status is WcStatus.REMOTE_ACCESS_ERROR
        assert qp.state is QpState.ERROR

    def test_out_of_bounds_write_naks(self, two_hosts):
        qp, cq, _sqp, _scq, region = two_hosts.connected_qp_pair()
        done = []
        cq.on_completion = done.append
        two_hosts.client.post_write(qp, b"x" * 64, region.end - 10, region.r_key)
        drain(two_hosts)
        assert done[0].status is WcStatus.REMOTE_ACCESS_ERROR

    def test_permission_revocation_naks(self, two_hosts):
        """The Mu leadership lever: flipping remote_write_allowed turns
        a write into a REMOTE_ACCESS_ERROR for the old leader."""
        qp, cq, sqp, _scq, region = two_hosts.connected_qp_pair()
        done = []
        cq.on_completion = done.append
        sqp.remote_write_allowed = False
        two_hosts.client.post_write(qp, b"x", region.addr, region.r_key)
        drain(two_hosts)
        assert done[0].status is WcStatus.REMOTE_ACCESS_ERROR
        assert region.read(region.addr, 1) == b"\x00"

    def test_queued_wrs_flushed_after_error(self, two_hosts):
        qp, cq, _sqp, _scq, region = two_hosts.connected_qp_pair()
        done = []
        cq.on_completion = done.append
        two_hosts.client.post_write(qp, b"x", region.addr, region.r_key ^ 1)
        for _ in range(3):
            two_hosts.client.post_write(qp, b"y", region.addr, region.r_key)
        drain(two_hosts)
        statuses = [wc.status for wc in done]
        assert statuses[0] is WcStatus.REMOTE_ACCESS_ERROR
        assert all(s in (WcStatus.WR_FLUSH_ERROR, WcStatus.REMOTE_ACCESS_ERROR)
                   for s in statuses)
        assert len(done) == 4

    def test_pipelined_writes_all_complete_in_order(self, two_hosts):
        qp, cq, _sqp, _scq, region = two_hosts.connected_qp_pair()
        done = []
        cq.on_completion = done.append
        for i in range(64):
            two_hosts.client.post_write(qp, bytes([i]) * 8,
                                        region.addr + i * 8, region.r_key)
        drain(two_hosts, ms=5)
        assert len(done) == 64
        assert [wc.wr_id for wc in done] == sorted(wc.wr_id for wc in done)
        for i in range(64):
            assert region.read(region.addr + i * 8, 8) == bytes([i]) * 8

    def test_window_respects_max_pending(self, two_hosts):
        qp, cq, _sqp, _scq, region = two_hosts.connected_qp_pair()
        for _ in range(40):
            two_hosts.client.post_write(qp, b"z" * 8, region.addr, region.r_key)
        # Run just until the CPU has posted them all to the NIC.
        two_hosts.sim.run(until=two_hosts.sim.now + 40 * params.CPU_POST_SEND_NS + 1000)
        assert qp.inflight <= params.MAX_PENDING_REQUESTS
        drain(two_hosts, ms=5)
        assert qp.inflight == 0


class TestRead:
    def test_read_returns_remote_bytes(self, two_hosts):
        qp, cq, _sqp, _scq, region = two_hosts.connected_qp_pair()
        region.write(region.addr + 64, b"remote-data")
        local = two_hosts.client.reg_mr(4096, Access.LOCAL_WRITE, "dst")
        done = []
        cq.on_completion = done.append
        two_hosts.client.post_read(qp, local.addr, region.addr + 64,
                                   region.r_key, 11)
        drain(two_hosts)
        assert done[0].ok
        assert local.read(local.addr, 11) == b"remote-data"

    def test_large_read_spans_multiple_response_packets(self, two_hosts):
        qp, cq, _sqp, _scq, region = two_hosts.connected_qp_pair()
        payload = bytes(range(256)) * 16  # 4096 B -> 4 response packets
        region.write(region.addr, payload)
        local = two_hosts.client.reg_mr(8192, Access.LOCAL_WRITE, "dst")
        done = []
        cq.on_completion = done.append
        two_hosts.client.post_read(qp, local.addr, region.addr,
                                   region.r_key, len(payload))
        drain(two_hosts)
        assert done[0].ok
        assert done[0].byte_len == len(payload)
        assert local.read(local.addr, len(payload)) == payload

    def test_read_without_permission_naks(self, two_hosts):
        qp, cq, sqp, _scq, region = two_hosts.connected_qp_pair()
        sqp.remote_read_allowed = False
        local = two_hosts.client.reg_mr(64, Access.LOCAL_WRITE, "dst")
        done = []
        cq.on_completion = done.append
        two_hosts.client.post_read(qp, local.addr, region.addr, region.r_key, 8)
        drain(two_hosts)
        assert done[0].status is WcStatus.REMOTE_ACCESS_ERROR

    def test_reads_interleave_with_writes(self, two_hosts):
        qp, cq, _sqp, _scq, region = two_hosts.connected_qp_pair()
        local = two_hosts.client.reg_mr(64, Access.LOCAL_WRITE, "dst")
        done = []
        cq.on_completion = done.append
        two_hosts.client.post_write(qp, b"AA", region.addr, region.r_key)
        two_hosts.client.post_read(qp, local.addr, region.addr, region.r_key, 2)
        two_hosts.client.post_write(qp, b"BB", region.addr, region.r_key)
        drain(two_hosts)
        assert [wc.ok for wc in done] == [True, True, True]
        assert local.read(local.addr, 2) == b"AA"  # read saw the first write


class TestSendRecv:
    def test_send_consumes_posted_receive(self, two_hosts):
        qp, cq, sqp, scq, _region = two_hosts.connected_qp_pair()
        buf = two_hosts.server.reg_mr(4096, Access.LOCAL_WRITE, "rq")
        rr_id = two_hosts.server.post_recv(sqp, buf.addr, 4096)
        recv_done = []
        scq.on_completion = recv_done.append
        done = []
        cq.on_completion = done.append
        wr = WorkRequest(1, WrOpcode.SEND, data=b"two-sided message")
        two_hosts.client.post_send(qp, wr)
        drain(two_hosts)
        assert done[0].ok
        assert recv_done[0].wr_id == rr_id
        assert recv_done[0].byte_len == len(b"two-sided message")
        assert buf.read(buf.addr, 17) == b"two-sided message"

    def test_send_without_receive_naks(self, two_hosts):
        qp, cq, _sqp, _scq, _region = two_hosts.connected_qp_pair()
        done = []
        cq.on_completion = done.append
        two_hosts.client.post_send(qp, WorkRequest(1, WrOpcode.SEND, data=b"x"))
        drain(two_hosts)
        assert not done[0].ok

    def test_multi_packet_send(self, two_hosts):
        qp, cq, sqp, scq, _region = two_hosts.connected_qp_pair()
        buf = two_hosts.server.reg_mr(8192, Access.LOCAL_WRITE, "rq")
        two_hosts.server.post_recv(sqp, buf.addr, 8192)
        recv_done = []
        scq.on_completion = recv_done.append
        payload = b"m" * 3000
        two_hosts.client.post_send(qp, WorkRequest(1, WrOpcode.SEND, data=payload))
        drain(two_hosts)
        assert recv_done and recv_done[0].byte_len == 3000
        assert buf.read(buf.addr, 3000) == payload


class TestCreditsAndCounters:
    def test_credits_updated_from_acks(self, two_hosts):
        qp, cq, _sqp, _scq, region = two_hosts.connected_qp_pair()
        two_hosts.client.post_write(qp, b"x", region.addr, region.r_key)
        drain(two_hosts)
        assert 0 < qp.credits <= params.INITIAL_CREDITS

    def test_packet_counters(self, two_hosts):
        qp, cq, _sqp, _scq, region = two_hosts.connected_qp_pair()
        base_tx = two_hosts.client.nic.packets_sent
        base_ack = two_hosts.server.nic.acks_sent
        two_hosts.client.post_write(qp, b"x" * 10, region.addr, region.r_key)
        drain(two_hosts)
        assert two_hosts.client.nic.packets_sent == base_tx + 1
        assert two_hosts.server.nic.acks_sent == base_ack + 1
