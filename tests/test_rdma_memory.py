"""Unit tests for memory regions, R_keys and permissions."""

import pytest

from repro.rdma import Access, AddressSpace, MemoryRegion
from repro.sim import SeededRng


class TestMemoryRegion:
    def region(self, length=4096, access=Access.REMOTE_WRITE | Access.REMOTE_READ):
        return MemoryRegion(0x1000, length, 0xAB, access, "r")

    def test_write_read_roundtrip(self):
        region = self.region()
        region.write(0x1100, b"hello")
        assert region.read(0x1100, 5) == b"hello"

    def test_bounds_enforced(self):
        region = self.region()
        with pytest.raises(ValueError):
            region.write(0x1000 + 4096 - 2, b"xyz")
        with pytest.raises(ValueError):
            region.read(0xFFF, 1)

    def test_contains_edges(self):
        region = self.region()
        assert region.contains(0x1000, 4096)
        assert not region.contains(0x1000, 4097)
        assert region.contains(0x1000 + 4095, 1)
        assert not region.contains(0x1000 + 4096, 1)

    def test_access_flags(self):
        region = MemoryRegion(0, 16, 1, Access.REMOTE_READ)
        assert region.allows(Access.REMOTE_READ)
        assert not region.allows(Access.REMOTE_WRITE)
        region.set_access(Access.REMOTE_READ | Access.REMOTE_WRITE)
        assert region.allows(Access.REMOTE_WRITE)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            MemoryRegion(0, 0, 1, Access.NONE)


class TestAddressSpace:
    def test_rkeys_are_unique_and_random(self):
        space = AddressSpace(SeededRng(1))
        keys = {space.register(64, Access.REMOTE_READ).r_key for _ in range(100)}
        assert len(keys) == 100

    def test_rkeys_differ_between_hosts(self):
        """"these keys are randomly generated and different on each
        server" -- different RNG streams give different keys."""
        a = AddressSpace(SeededRng(1)).register(64, Access.REMOTE_READ)
        b = AddressSpace(SeededRng(2)).register(64, Access.REMOTE_READ)
        assert a.r_key != b.r_key

    def test_regions_do_not_overlap(self):
        space = AddressSpace(SeededRng(1))
        regions = [space.register(5000, Access.REMOTE_READ) for _ in range(10)]
        for i, r1 in enumerate(regions):
            for r2 in regions[i + 1:]:
                assert r1.end <= r2.addr or r2.end <= r1.addr

    def test_guard_page_between_regions(self):
        space = AddressSpace(SeededRng(1))
        r1 = space.register(4096, Access.REMOTE_READ)
        r2 = space.register(4096, Access.REMOTE_READ)
        assert r2.addr >= r1.end + AddressSpace.ALIGNMENT

    def test_lookup_by_rkey(self):
        space = AddressSpace(SeededRng(1))
        region = space.register(64, Access.REMOTE_READ, "x")
        assert space.by_rkey(region.r_key) is region
        assert space.by_rkey(region.r_key + 1) is None

    def test_lookup_by_va(self):
        space = AddressSpace(SeededRng(1))
        region = space.register(64, Access.REMOTE_READ)
        assert space.by_va(region.addr + 10, 4) is region
        assert space.by_va(region.addr + 63, 2) is None

    def test_deregister_removes_rkey(self):
        space = AddressSpace(SeededRng(1))
        region = space.register(64, Access.REMOTE_READ)
        space.deregister(region)
        assert space.by_rkey(region.r_key) is None
        assert space.by_va(region.addr) is None

    def test_vas_look_like_userspace_pointers(self):
        space = AddressSpace(SeededRng(1))
        region = space.register(64, Access.REMOTE_READ)
        assert region.addr >= AddressSpace.BASE_VA
