"""Scenario algebra, the rejoin path, CP restart, and seed-replay."""

import pytest

from repro import Cluster, ClusterConfig
from repro.faults import (
    REJOIN_RECOVERY_BOUND_NS,
    ChaosController,
    ControlPlaneRestart,
    CreditStarve,
    LeaderChurn,
    LossyLink,
    ReplicaCrashRejoin,
)
from repro.workloads.chaos import ChaosLoadDriver, chaos_cell_specs
from repro.workloads.experiments import install_trace_digest

MS = 1_000_000


def small(seed=29, **kw):
    cluster = Cluster.build(ClusterConfig(num_replicas=2, protocol="p4ce",
                                          seed=seed, **kw))
    cluster.await_ready()
    return cluster


class TestAlgebra:
    def test_sequence_chains_parts_with_gap(self):
        cluster = small()
        controller = ChaosController([cluster])
        scenario = (LossyLink(node=1, rate=0.02, duration_ms=4.0)
                    >> CreditStarve(node=1, duration_ms=4.0))
        t0 = cluster.sim.now + 1 * MS
        end = controller.arm(scenario, at_ns=t0)
        assert end == pytest.approx(t0 + (4 + 2 + 4) * MS)
        desc = scenario.describe()
        assert desc["scenario"] == "seq"
        assert [p["scenario"] for p in desc["params"]["parts"]] == [
            "lossy_link", "credit_starve"]

    def test_overlay_ends_at_longest_part(self):
        cluster = small()
        controller = ChaosController([cluster])
        scenario = (LossyLink(node=1, rate=0.02, duration_ms=9.0)
                    | CreditStarve(node=1, duration_ms=3.0))
        t0 = cluster.sim.now + 1 * MS
        assert controller.arm(scenario, at_ns=t0) == pytest.approx(
            t0 + 9 * MS)
        assert scenario.describe()["scenario"] == "overlay"

    def test_scheduled_strikes_apply_and_revert(self):
        cluster = small()
        controller = ChaosController([cluster])
        link = cluster.hosts[1].nic.port.link
        scenario = LossyLink(node=1, rate=0.10, duration_ms=5.0)
        controller.arm(scenario, at_ns=cluster.sim.now + 1 * MS)
        cluster.run_for(3 * MS)
        assert link.drop_probability == 0.10
        cluster.run_for(5 * MS)
        assert link.drop_probability == 0.0
        kinds = [r["kind"] for r in controller.journal_dicts()]
        assert kinds == ["set_loss", "set_loss"]

    def test_cell_matrix_has_at_least_twelve_cells(self):
        quick = chaos_cell_specs(quick=True)
        full = chaos_cell_specs(quick=False)
        assert len(quick) >= 12
        assert len(full) > len(quick)
        assert len({s["cell"] for s in full}) == len(full)
        for spec in full:
            assert spec["chaos_ns"] > 0 and spec["num_groups"] in (1, 2)


class TestReplicaRejoin:
    @pytest.mark.parametrize("hard", [False, True])
    def test_follower_rejoins_within_the_bound(self, hard):
        cluster = small(seed=31)
        reconfigs = []
        cluster.on_group_reconfigured = (
            lambda member: reconfigs.append(cluster.sim.now))
        driver = ChaosLoadDriver(cluster, value_size=32, window=4)
        driver.start()
        cluster.run_for(1 * MS)
        controller = ChaosController([cluster])
        scenario = ReplicaCrashRejoin(down_ms=10.0, hard=hard)
        controller.arm(scenario, at_ns=cluster.sim.now + 1 * MS)
        cluster.run_for(12 * MS + REJOIN_RECOVERY_BOUND_NS + 10 * MS)
        driver.stop()
        cluster.run_for(4 * MS)
        journal = controller.injector(0).journal
        kinds = [r.kind for r in journal]
        if hard:
            assert kinds == ["crash_host", "revive_host"]
        else:
            assert kinds == ["kill_app", "restart_app"]
        revive_t = [r.time_ns for r in journal
                    if r.kind in ("restart_app", "revive_host")][0]
        after = [t for t in reconfigs if t >= revive_t]
        assert after, "the rejoin never completed a group rebuild"
        assert after[0] - revive_t <= REJOIN_RECOVERY_BOUND_NS
        # The victim's log caught up to the leader's commit point.
        victim = max(m.node_id for m in cluster.members.values()
                     if not m.is_leader)
        leader = cluster.leader
        assert leader is not None and leader.comm_mode == "switch"
        assert (cluster.members[victim].log.next_offset
                >= leader.commit_offset)
        assert driver.commits > 0


class TestControlPlaneRestart:
    def test_restart_mid_provisioning_releases_budget_and_recovers(self):
        cluster = small(seed=37)
        cp = cluster.control_plane
        baseline = dict(cp.resources._used)
        driver = ChaosLoadDriver(cluster, value_size=32, window=4)
        driver.start()
        cluster.run_for(1 * MS)
        controller = ChaosController([cluster])
        # The CP dies 16 ms after the strike: ~3.5 ms into the rebuild
        # the rejoin triggers, with provisioning CM handshakes in flight.
        scenario = (ReplicaCrashRejoin(down_ms=12.0)
                    | ControlPlaneRestart(at_offset_ms=16.0))
        controller.arm(scenario, at_ns=cluster.sim.now + 1 * MS)
        cluster.run_for(240 * MS)
        driver.stop()
        cluster.run_for(4 * MS)
        assert cp.cp_restarts == 1
        assert not cp._pending
        # Every endpoint id and budget unit of the discarded handshake
        # came back; the retry re-provisioned from a clean pool.
        assert dict(cp.resources._used) == baseline
        leader = cluster.leader
        assert leader is not None and leader.comm_mode == "switch"
        assert driver.commits > 0


class TestSeedReplay:
    def _run(self, replay=None):
        cluster = small(seed=47)
        digest = install_trace_digest(cluster)
        driver = ChaosLoadDriver(cluster, value_size=32, window=4)
        driver.start()
        cluster.run_for(1 * MS)
        controller = ChaosController([cluster])
        if replay is not None:
            armed = controller.replay(replay)
            assert armed == len(replay)
        else:
            controller.arm(LeaderChurn(rounds=1, down_ms=6.0),
                           at_ns=cluster.sim.now + 500_000)
        cluster.run_for(45 * MS)
        driver.stop()
        cluster.run_for(2 * MS)
        return (digest.hexdigest(), driver.commits,
                controller.journal_dicts(),
                controller.journal_json(actions_only=True))

    def test_replay_from_journal_reproduces_the_run_bit_for_bit(self):
        digest, commits, journal, actions = self._run()
        # Leader churn resolves its victim dynamically at strike time --
        # the journal must hold the *resolved* kill, not the decision.
        assert [r["kind"] for r in journal if r["action"]] == [
            "kill_app", "restart_app"]
        replayed = [r for r in journal if r["action"]]
        digest2, commits2, _, actions2 = self._run(replay=replayed)
        assert digest2 == digest
        assert commits2 == commits
        assert actions2 == actions
