"""ICRC tests: integrity end-to-end, and why the switch must recompute it."""

import pytest

from repro import params
from repro.net import (
    EthernetHeader,
    Ipv4Address,
    Ipv4Header,
    MacAddress,
    Packet,
    UdpHeader,
)
from repro.rdma.headers import Bth, Reth
from repro.rdma.icrc import check_icrc, compute_icrc, stamp_icrc
from repro.rdma.opcodes import Opcode


def roce_packet(payload=b"data" * 16, psn=7, qp=0x12):
    pkt = Packet(
        EthernetHeader(MacAddress(1), MacAddress(2)),
        Ipv4Header(Ipv4Address(0x0A000001), Ipv4Address(0x0A000002)),
        UdpHeader(49152, params.ROCE_UDP_PORT),
        [Bth(Opcode.RDMA_WRITE_ONLY, qp, psn),
         Reth(0x7000, 0xABCD, 64)],
        payload, has_icrc=True)
    pkt.finalize()
    return pkt


class TestIcrcProperties:
    def test_stamp_then_check(self):
        pkt = roce_packet()
        stamp_icrc(pkt)
        assert check_icrc(pkt)

    def test_unstamped_packet_fails(self):
        assert not check_icrc(roce_packet())

    @pytest.mark.parametrize("mutate", [
        lambda p: setattr(p.upper[0], "psn", 8),
        lambda p: setattr(p.upper[0], "dest_qp", 0x13),
        lambda p: setattr(p.upper[1], "virtual_address", 0x7008),
        lambda p: setattr(p.upper[1], "r_key", 0xABCE),
        lambda p: setattr(p.ipv4, "dst", Ipv4Address(0x0A000003)),
        lambda p: setattr(p, "payload", b"DATA" * 16),
    ])
    def test_covered_field_change_invalidates(self, mutate):
        pkt = roce_packet()
        stamp_icrc(pkt)
        mutate(pkt)
        pkt.finalize()
        assert not check_icrc(pkt)

    @pytest.mark.parametrize("mutate", [
        lambda p: setattr(p.ipv4, "ttl", 63),
        lambda p: setattr(p.ipv4, "dscp", 4),
        lambda p: setattr(p.udp, "src_port", 50000),
        lambda p: setattr(p.eth, "dst", MacAddress(9)),
    ])
    def test_masked_field_change_preserved(self, mutate):
        """Routable fields (TTL, DSCP, MACs, UDP entropy port) are masked
        from the ICRC so plain routers never break it."""
        pkt = roce_packet()
        stamp_icrc(pkt)
        mutate(pkt)
        assert check_icrc(pkt)

    def test_copy_carries_stamp(self):
        pkt = roce_packet()
        stamp_icrc(pkt)
        assert check_icrc(pkt.copy())

    def test_deterministic(self):
        assert compute_icrc(roce_packet()) == compute_icrc(roce_packet())


class TestSwitchMustRecompute:
    def test_p4ce_without_icrc_recompute_delivers_nothing(self, two_hosts=None):
        """The negative proof: a P4CE program that rewrites headers but
        forgets the ICRC gets every scattered write discarded by the
        replicas' NICs, and the leader's write times out."""
        import sys
        sys.path.insert(0, "tests")
        from test_p4ce_plane import P4ceRig, MemberAdvert, MS
        from repro.rdma import WcStatus

        rig = P4ceRig(recompute_icrc=False)
        qp, cq, result = rig.create_group()
        advert = MemberAdvert.unpack(result["pd"])
        done = []
        cq.on_completion = done.append
        rig.leader.post_write(qp, b"doomed", 0, advert.r_key)
        rig.sim.run(until=rig.sim.now + 5 * MS)
        # Every replica dropped the rewritten packets at the ICRC check.
        drops = sum(r.nic.icrc_drops for r in rig.replicas)
        assert drops > 0
        for region in rig.logs.values():
            assert region.read(region.addr, 6) == b"\x00" * 6
        assert done and done[0].status is WcStatus.RETRY_EXCEEDED

    def test_p4ce_with_recompute_passes_checks(self):
        import sys
        sys.path.insert(0, "tests")
        from test_p4ce_plane import P4ceRig, MemberAdvert, MS

        rig = P4ceRig(recompute_icrc=True)
        qp, cq, result = rig.create_group()
        advert = MemberAdvert.unpack(result["pd"])
        done = []
        cq.on_completion = done.append
        rig.leader.post_write(qp, b"intact", 0, advert.r_key)
        rig.sim.run(until=rig.sim.now + 2 * MS)
        assert done and done[0].ok
        assert all(r.nic.icrc_drops == 0 for r in rig.replicas)
        assert rig.leader.nic.icrc_drops == 0
