"""ICRC tests: integrity end-to-end, and why the switch must recompute it."""

import random
import struct

import pytest

from repro import fastlane, params
from repro.net import (
    EthernetHeader,
    Ipv4Address,
    Ipv4Header,
    MacAddress,
    Packet,
    UdpHeader,
)
from repro.rdma.headers import Aeth, AtomicEth, Bth, Reth
from repro.rdma.icrc import _header_suffix, check_icrc, compute_icrc, stamp_icrc
from repro.rdma.opcodes import Opcode


def roce_packet(payload=b"data" * 16, psn=7, qp=0x12):
    pkt = Packet(
        EthernetHeader(MacAddress(1), MacAddress(2)),
        Ipv4Header(Ipv4Address(0x0A000001), Ipv4Address(0x0A000002)),
        UdpHeader(49152, params.ROCE_UDP_PORT),
        [Bth(Opcode.RDMA_WRITE_ONLY, qp, psn),
         Reth(0x7000, 0xABCD, 64)],
        payload, has_icrc=True)
    pkt.finalize()
    return pkt


class TestIcrcProperties:
    def test_stamp_then_check(self):
        pkt = roce_packet()
        stamp_icrc(pkt)
        assert check_icrc(pkt)

    def test_unstamped_packet_fails(self):
        assert not check_icrc(roce_packet())

    @pytest.mark.parametrize("mutate", [
        lambda p: setattr(p.upper[0], "psn", 8),
        lambda p: setattr(p.upper[0], "dest_qp", 0x13),
        lambda p: setattr(p.upper[1], "virtual_address", 0x7008),
        lambda p: setattr(p.upper[1], "r_key", 0xABCE),
        lambda p: setattr(p.ipv4, "dst", Ipv4Address(0x0A000003)),
        lambda p: setattr(p, "payload", b"DATA" * 16),
    ])
    def test_covered_field_change_invalidates(self, mutate):
        pkt = roce_packet()
        stamp_icrc(pkt)
        mutate(pkt)
        pkt.finalize()
        assert not check_icrc(pkt)

    @pytest.mark.parametrize("mutate", [
        lambda p: setattr(p.ipv4, "ttl", 63),
        lambda p: setattr(p.ipv4, "dscp", 4),
        lambda p: setattr(p.udp, "src_port", 50000),
        lambda p: setattr(p.eth, "dst", MacAddress(9)),
    ])
    def test_masked_field_change_preserved(self, mutate):
        """Routable fields (TTL, DSCP, MACs, UDP entropy port) are masked
        from the ICRC so plain routers never break it."""
        pkt = roce_packet()
        stamp_icrc(pkt)
        mutate(pkt)
        assert check_icrc(pkt)

    def test_copy_carries_stamp(self):
        pkt = roce_packet()
        stamp_icrc(pkt)
        assert check_icrc(pkt.copy())

    def test_deterministic(self):
        assert compute_icrc(roce_packet()) == compute_icrc(roce_packet())


def _random_roce_packet(rng: random.Random) -> Packet:
    """A randomized RoCE packet over the header shapes RC traffic uses."""
    bth = Bth(rng.choice([Opcode.RDMA_WRITE_ONLY, Opcode.RDMA_WRITE_FIRST,
                          Opcode.ACKNOWLEDGE, Opcode.SEND_ONLY]),
              rng.randrange(1 << 24), rng.randrange(1 << 24),
              ack_req=rng.random() < 0.5, solicited=rng.random() < 0.5,
              partition_key=rng.randrange(1 << 16))
    shape = rng.randrange(4)
    if shape == 0:
        upper = [bth]
    elif shape == 1:
        upper = [bth, Aeth(rng.randrange(256), rng.randrange(1 << 24))]
    elif shape == 2:
        upper = [bth, Reth(rng.randrange(1 << 48), rng.randrange(1 << 32),
                           rng.randrange(1 << 16))]
    else:
        upper = [bth, AtomicEth(rng.randrange(1 << 48), rng.randrange(1 << 32),
                                rng.randrange(1 << 64))]
    payload = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 257)))
    pkt = Packet(
        EthernetHeader(MacAddress(rng.randrange(1 << 48)),
                       MacAddress(rng.randrange(1 << 48))),
        Ipv4Header(Ipv4Address(rng.randrange(1 << 32)),
                   Ipv4Address(rng.randrange(1 << 32))),
        UdpHeader(49152 + rng.randrange(1024), params.ROCE_UDP_PORT),
        upper, payload, has_icrc=True)
    pkt.finalize()
    return pkt


class TestIncrementalEqualsFull:
    """The incremental lane must agree bit-for-bit with full recompute."""

    def test_randomized_packets(self):
        rng = random.Random(0x1C2C)
        for _ in range(200):
            pkt = _random_roce_packet(rng)
            fastlane.flags.incremental_icrc = True
            try:
                incremental = compute_icrc(pkt)
                # Second call exercises the whole-result cache.
                assert compute_icrc(pkt) == incremental
                fastlane.flags.incremental_icrc = False
                full = compute_icrc(pkt)
            finally:
                fastlane.flags.incremental_icrc = True
            assert incremental == full

    def test_randomized_rewrites(self):
        """Switch-egress-style rewrites: the cached payload CRC must
        recombine with the fresh header suffix to the full value."""
        rng = random.Random(0xE9)
        for _ in range(100):
            pkt = _random_roce_packet(rng)
            compute_icrc(pkt)  # warm the payload + whole-result caches
            bth = pkt.upper[0]
            bth.dest_qp = rng.randrange(1 << 24)
            bth.psn = rng.randrange(1 << 24)
            pkt.ipv4.dst = Ipv4Address(rng.randrange(1 << 32))
            for header in pkt.upper[1:]:
                if isinstance(header, Reth):
                    header.virtual_address = rng.randrange(1 << 48)
                    header.r_key = rng.randrange(1 << 32)
            pkt.finalize()
            incremental = compute_icrc(pkt)
            fastlane.flags.incremental_icrc = False
            try:
                assert compute_icrc(pkt) == incremental
            finally:
                fastlane.flags.incremental_icrc = True

    def test_suffix_codecs_match_general_path(self):
        """The one-shot struct codecs for [Bth], [Bth, Aeth] and
        [Bth, Reth] must produce the same canonical bytes as the
        parts-list fallback (which AtomicEth stacks always take)."""
        rng = random.Random(0xACE)
        for _ in range(200):
            pkt = _random_roce_packet(rng)
            ipv4, udp = pkt.ipv4, pkt.udp
            reference = b"".join(
                [ipv4.src.to_bytes(), ipv4.dst.to_bytes(),
                 struct.pack("!BHH", ipv4.protocol, udp.dst_port, udp.length)]
                + [h.pack() for h in pkt.upper
                   if isinstance(h, (Bth, Reth, Aeth))])
            assert _header_suffix(pkt, ipv4, udp) == reference

    def test_masked_fields_do_not_invalidate_cached_value(self):
        pkt = roce_packet()
        stamp_icrc(pkt)
        before = compute_icrc(pkt)
        pkt.ipv4.ttl = 9
        pkt.ipv4.dscp = 11
        pkt.udp.src_port = 50123
        assert compute_icrc(pkt) == before
        assert check_icrc(pkt)

    def test_each_covered_field_invalidates(self):
        rng = random.Random(7)
        mutators = [
            lambda p: setattr(p.upper[0], "dest_qp", p.upper[0].dest_qp ^ 1),
            lambda p: setattr(p.upper[0], "psn", p.upper[0].psn ^ 1),
            lambda p: setattr(p.upper[1], "virtual_address",
                              p.upper[1].virtual_address ^ 1),
            lambda p: setattr(p.upper[1], "r_key", p.upper[1].r_key ^ 1),
            lambda p: setattr(p, "payload", b"Y" + p.payload[1:]),
        ]
        for mutate in mutators:
            pkt = roce_packet(payload=bytes(rng.randrange(256)
                                            for _ in range(64)))
            before = compute_icrc(pkt)
            mutate(pkt)
            pkt.finalize()
            assert compute_icrc(pkt) != before


class TestSwitchMustRecompute:
    def test_p4ce_without_icrc_recompute_delivers_nothing(self, two_hosts=None):
        """The negative proof: a P4CE program that rewrites headers but
        forgets the ICRC gets every scattered write discarded by the
        replicas' NICs, and the leader's write times out."""
        import sys
        sys.path.insert(0, "tests")
        from test_p4ce_plane import P4ceRig, MemberAdvert, MS
        from repro.rdma import WcStatus

        rig = P4ceRig(recompute_icrc=False)
        qp, cq, result = rig.create_group()
        advert = MemberAdvert.unpack(result["pd"])
        done = []
        cq.on_completion = done.append
        rig.leader.post_write(qp, b"doomed", 0, advert.r_key)
        rig.sim.run(until=rig.sim.now + 5 * MS)
        # Every replica dropped the rewritten packets at the ICRC check.
        drops = sum(r.nic.icrc_drops for r in rig.replicas)
        assert drops > 0
        for region in rig.logs.values():
            assert region.read(region.addr, 6) == b"\x00" * 6
        assert done and done[0].status is WcStatus.RETRY_EXCEEDED

    def test_p4ce_with_recompute_passes_checks(self):
        import sys
        sys.path.insert(0, "tests")
        from test_p4ce_plane import P4ceRig, MemberAdvert, MS

        rig = P4ceRig(recompute_icrc=True)
        qp, cq, result = rig.create_group()
        advert = MemberAdvert.unpack(result["pd"])
        done = []
        cq.on_completion = done.append
        rig.leader.post_write(qp, b"intact", 0, advert.r_key)
        rig.sim.run(until=rig.sim.now + 2 * MS)
        assert done and done[0].ok
        assert all(r.nic.icrc_drops == 0 for r in rig.replicas)
        assert rig.leader.nic.icrc_drops == 0
