"""Tests for RDMA atomic operations (compare-and-swap, fetch-and-add).

These are the primitives competing RDMA consensus designs build on (the
paper's related work cites Velos' CAS-based leader arbitration); the
substrate supports them fully.
"""

import pytest

from repro.rdma import Access, AtomicAckEth, AtomicEth, WcStatus


def drain(rig, ms=2.0):
    rig.sim.run(until=rig.sim.now + ms * 1e6)


@pytest.fixture
def atomic_rig(two_hosts):
    qp, cq, sqp, scq, region = two_hosts.connected_qp_pair(
        access=Access.REMOTE_WRITE | Access.REMOTE_READ | Access.REMOTE_ATOMIC)
    local = two_hosts.client.reg_mr(64, Access.LOCAL_WRITE, "orig")
    done = []
    cq.on_completion = done.append
    return two_hosts, qp, region, local, done


class TestHeaderCodecs:
    def test_atomic_eth_roundtrip(self):
        header = AtomicEth(0x7F00_0000_1000, 0xAB, 42, 17)
        parsed = AtomicEth.unpack(header.pack())
        assert parsed.virtual_address == 0x7F00_0000_1000
        assert parsed.r_key == 0xAB
        assert parsed.swap_or_add == 42
        assert parsed.compare == 17
        assert len(header.pack()) == AtomicEth.SIZE == 28

    def test_atomic_ack_eth_roundtrip(self):
        header = AtomicAckEth(0xFFFF_FFFF_FFFF_FFFF)
        assert AtomicAckEth.unpack(header.pack()).original == header.original
        assert len(header.pack()) == AtomicAckEth.SIZE == 8


class TestFetchAdd:
    def test_adds_and_returns_original(self, atomic_rig):
        rig, qp, region, local, done = atomic_rig
        region.write(region.addr, (100).to_bytes(8, "big"))
        rig.client.post_fetch_add(qp, region.addr, region.r_key, 5,
                                  local_va=local.addr)
        drain(rig)
        assert done and done[0].ok
        assert int.from_bytes(region.read(region.addr, 8), "big") == 105
        assert int.from_bytes(local.read(local.addr, 8), "big") == 100

    def test_sequential_adds_accumulate(self, atomic_rig):
        rig, qp, region, local, done = atomic_rig
        for _ in range(10):
            rig.client.post_fetch_add(qp, region.addr, region.r_key, 3)
        drain(rig)
        assert len([wc for wc in done if wc.ok]) == 10
        assert int.from_bytes(region.read(region.addr, 8), "big") == 30

    def test_wraps_at_64_bits(self, atomic_rig):
        rig, qp, region, local, done = atomic_rig
        region.write(region.addr, ((1 << 64) - 1).to_bytes(8, "big"))
        rig.client.post_fetch_add(qp, region.addr, region.r_key, 2)
        drain(rig)
        assert int.from_bytes(region.read(region.addr, 8), "big") == 1


class TestCompareSwap:
    def test_swap_succeeds_on_match(self, atomic_rig):
        rig, qp, region, local, done = atomic_rig
        region.write(region.addr, (7).to_bytes(8, "big"))
        rig.client.post_cas(qp, region.addr, region.r_key, compare=7, swap=99,
                            local_va=local.addr)
        drain(rig)
        assert done[0].ok
        assert int.from_bytes(region.read(region.addr, 8), "big") == 99
        assert int.from_bytes(local.read(local.addr, 8), "big") == 7

    def test_swap_noop_on_mismatch_but_returns_original(self, atomic_rig):
        rig, qp, region, local, done = atomic_rig
        region.write(region.addr, (7).to_bytes(8, "big"))
        rig.client.post_cas(qp, region.addr, region.r_key, compare=8, swap=99,
                            local_va=local.addr)
        drain(rig)
        assert done[0].ok  # the *operation* succeeds; the swap did not
        assert int.from_bytes(region.read(region.addr, 8), "big") == 7
        assert int.from_bytes(local.read(local.addr, 8), "big") == 7

    def test_velos_style_leader_arbitration(self, atomic_rig):
        """Two candidates CAS the same slot: exactly one wins (the
        arbitration pattern of CAS-based consensus designs)."""
        rig, qp, region, local, done = atomic_rig
        rig.client.post_cas(qp, region.addr, region.r_key, compare=0, swap=111,
                            local_va=local.addr)
        rig.client.post_cas(qp, region.addr, region.r_key, compare=0, swap=222,
                            local_va=local.addr + 8)
        drain(rig)
        assert int.from_bytes(region.read(region.addr, 8), "big") == 111
        first = int.from_bytes(local.read(local.addr, 8), "big")
        second = int.from_bytes(local.read(local.addr + 8, 8), "big")
        assert first == 0       # winner saw the empty slot
        assert second == 111    # loser saw the winner


class TestAtomicErrors:
    def test_unaligned_address_naks(self, atomic_rig):
        rig, qp, region, local, done = atomic_rig
        rig.client.post_fetch_add(qp, region.addr + 4, region.r_key, 1)
        drain(rig)
        assert not done[0].ok

    def test_region_without_atomic_access_naks(self, two_hosts):
        qp, cq, _sqp, _scq, region = two_hosts.connected_qp_pair(
            access=Access.REMOTE_WRITE | Access.REMOTE_READ)
        done = []
        cq.on_completion = done.append
        two_hosts.client.post_fetch_add(qp, region.addr, region.r_key, 1)
        drain(two_hosts)
        assert done[0].status is WcStatus.REMOTE_ACCESS_ERROR

    def test_atomics_interleave_with_writes(self, atomic_rig):
        rig, qp, region, local, done = atomic_rig
        rig.client.post_write(qp, (5).to_bytes(8, "big"), region.addr,
                              region.r_key)
        rig.client.post_fetch_add(qp, region.addr, region.r_key, 10)
        rig.client.post_write(qp, b"after", region.addr + 16, region.r_key)
        drain(rig)
        assert [wc.ok for wc in done] == [True, True, True]
        assert int.from_bytes(region.read(region.addr, 8), "big") == 15
        assert region.read(region.addr + 16, 5) == b"after"
