"""Integration tests: full clusters, both protocols."""

import pytest

from repro import Cluster, ClusterConfig, NotLeaderError, Role

MS = 1_000_000


def make(protocol="p4ce", num_replicas=2, **kw):
    kw.setdefault("seed", 5)
    cluster = Cluster.build(ClusterConfig(num_replicas=num_replicas,
                                          protocol=protocol, **kw))
    cluster.await_ready()
    return cluster


class TestBootstrap:
    @pytest.mark.parametrize("protocol", ["mu", "p4ce"])
    def test_lowest_id_becomes_leader(self, protocol):
        cluster = make(protocol)
        assert cluster.leader.node_id == 0
        for member in cluster.members.values():
            assert member.view_leader == 0

    def test_p4ce_bootstrap_includes_group_setup(self):
        cluster = make("p4ce")
        assert cluster.sim.now >= 40 * MS
        assert cluster.leader.comm_mode == "switch"
        assert cluster.control_plane.groups_configured == 1

    def test_mu_bootstrap_is_fast(self):
        cluster = make("mu")
        assert cluster.sim.now < 5 * MS
        assert cluster.leader.comm_mode == "direct"

    def test_replicas_grant_only_the_leader(self):
        cluster = make("mu")
        leader_ip = cluster.members[0].primary_ip.value
        for member in cluster.members.values():
            if member.node_id == 0:
                continue
            for claimant, qps in member.granted_qps.items():
                expected = claimant == leader_ip
                for qp in qps:
                    assert qp.remote_write_allowed == expected


class TestCommit:
    @pytest.mark.parametrize("protocol", ["mu", "p4ce"])
    def test_commit_applies_on_every_machine(self, protocol):
        cluster = make(protocol)
        done = []
        for i in range(25):
            cluster.propose(f"value-{i}".encode(), done.append)
        cluster.run_for(5 * MS)
        assert len(done) == 25
        assert all(e.committed for e in done)
        for member in cluster.members.values():
            payloads = [p for _off, _ep, p in member.applied]
            assert payloads == [f"value-{i}".encode() for i in range(25)]

    @pytest.mark.parametrize("protocol", ["mu", "p4ce"])
    def test_commit_order_matches_propose_order(self, protocol):
        cluster = make(protocol)
        order = []
        for i in range(40):
            cluster.propose(i.to_bytes(4, "big"),
                            lambda e: order.append(int.from_bytes(e.payload, "big")))
        cluster.run_for(5 * MS)
        assert order == list(range(40))

    def test_commit_latency_measured(self):
        cluster = make("p4ce")
        done = []
        cluster.propose(b"x", done.append)
        cluster.run_for(2 * MS)
        assert 0 < done[0].latency_ns < 100_000  # sub-100 us

    def test_propose_on_follower_raises(self):
        cluster = make("mu")
        with pytest.raises(NotLeaderError):
            cluster.members[1].propose(b"nope")

    def test_large_values_replicate(self):
        cluster = make("p4ce", value_size_hint=16384)
        done = []
        payload = bytes(range(256)) * 64  # 16 KiB
        cluster.propose(payload, done.append)
        cluster.run_for(5 * MS)
        assert done and done[0].committed
        for member in cluster.members.values():
            assert member.applied[-1][2] == payload

    def test_empty_payload_commits(self):
        cluster = make("mu")
        done = []
        cluster.propose(b"", done.append)
        cluster.run_for(2 * MS)
        assert done and done[0].committed

    @pytest.mark.parametrize("protocol", ["mu", "p4ce"])
    def test_log_recycling_under_sustained_load(self, protocol):
        cluster = make(protocol, log_bytes=64 * 1024)
        committed = {"n": 0}

        def refill(entry):
            if entry.committed:
                committed["n"] += 1
            if committed["n"] < 1500:
                cluster.propose(b"z" * 64, refill)

        for _ in range(4):
            cluster.propose(b"z" * 64, refill)
        cluster.sim.run_until(lambda: committed["n"] >= 1500, timeout=300 * MS)
        assert committed["n"] >= 1500
        leader = cluster.leader
        # 800 * 80B entries >> 64 KiB: the log must have wrapped.
        assert leader.log.lap_of(leader.log.next_offset) >= 1
        for member in cluster.members.values():
            assert len(member.applied) >= 1500


class TestBatching:
    def test_batched_run_commits_everything_in_order(self):
        cluster = make("p4ce", batching=True)
        order = []
        for i in range(300):
            cluster.propose(i.to_bytes(4, "big"),
                            lambda e: order.append(int.from_bytes(e.payload, "big")))
        cluster.run_for(10 * MS)
        assert order == list(range(300))

    def test_batching_reduces_leader_writes(self):
        plain = make("p4ce", seed=5)
        batched = make("p4ce", batching=True, seed=5)
        results = {}
        for name, cluster in (("plain", plain), ("batched", batched)):
            done = []
            for i in range(200):
                cluster.propose(b"v" * 64, done.append)
            cluster.run_for(10 * MS)
            assert len(done) == 200
            # Count write requests on the broadcast QP, not raw packets
            # (heartbeat reads would drown the signal).
            results[name] = cluster.leader.switch_rep.qp.requests_posted
        assert results["batched"] < results["plain"] / 3


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        runs = []
        for _ in range(2):
            cluster = make("p4ce", seed=9)
            done = []
            for i in range(20):
                cluster.propose(bytes([i]), done.append)
            cluster.run_for(3 * MS)
            runs.append((cluster.sim.now, cluster.sim.events_executed,
                         [e.committed_at for e in done]))
        assert runs[0] == runs[1]

    def test_different_seeds_differ(self):
        a = make("p4ce", seed=1)
        b = make("p4ce", seed=2)
        assert a.sim.events_executed != b.sim.events_executed or \
            a.members[0].log_region.r_key != b.members[0].log_region.r_key
