"""Flight fusion (fast lane 9) engage/disengage fidelity.

Every test runs the same seeded workload twice -- flight fusion on and
off (lanes 1-8 stay on, so the comparison isolates lane 9) -- and
asserts the *entire observable run* is identical: the packet-trace
digest over every frame accepted by every link (wire bytes + ICRC +
timestamp), the commit count, and the kernel's executed-event count.
The fused run must additionally prove it actually fused (and, for the
fault scenarios, defused and re-engaged) via the planner's counters.
"""

from __future__ import annotations

import hashlib
import struct

import pytest

from repro import fastlane
from repro.faults.injector import FaultSchedule
from repro.sim.flight import _NUMRECV_SLOTS
from repro.workloads.experiments import ClosedLoopDriver, build_cluster

MS = 1_000_000


def _tap_digest(cluster):
    """Hash every frame accepted by every link, as tools/bench_sim.py does."""
    digest = hashlib.sha256()
    sim = cluster.sim
    update = digest.update
    pack_meta = struct.Struct("!dI").pack

    def tap(src, packet):
        update(packet.pack())
        icrc = packet.meta.get("icrc")
        update(pack_meta(sim._now, 0 if icrc is None else icrc))

    switches = [cluster.switch]
    if cluster.backup_switch is not None:
        switches.append(cluster.backup_switch)
    for switch in switches:
        for port in switch.ports:
            if port.link is not None:
                port.link.tap = tap
    return digest


def _run(fusion_on, fault_fn=None, run_ns=0.6 * MS, replicas=2,
         value_size=64, superfusion_on=None):
    """One seeded closed-loop run; returns every observable we compare.

    ``superfusion_on`` defaults to following ``fusion_on`` (lane 11 rides
    on lane 9); pass False to pin the hop-by-hop drain for lane-11
    attribution runs.
    """
    fastlane.flags.set_all(True)
    fastlane.flags.flight_fusion = fusion_on
    fastlane.flags.window_superfusion = (
        fusion_on if superfusion_on is None else (fusion_on and superfusion_on))
    try:
        cluster = build_cluster("p4ce", replicas, value_size=value_size,
                                seed=7)
        digest = _tap_digest(cluster)
        leader = cluster.await_ready()
        driver = ClosedLoopDriver(cluster, value_size, window=16)
        driver.start()
        cluster.run_for(0.1 * MS)
        planner = cluster.flight_planner
        probe = {}
        if fault_fn is not None:
            fault_fn(cluster, leader, planner, probe)
        cluster.run_for(run_ns)
        driver.stop()
        return {
            "digest": digest.hexdigest(),
            "commits": driver.commits,
            "events": cluster.sim.events_executed,
            "flights_fused": planner.flights_fused,
            "defusions": planner.defusions,
            "runs_fused": planner.runs_fused,
            "hops_batched": planner.hops_batched,
            "batch_splits": planner.batch_splits,
            "fused_at_heal": probe.get("fused_at_heal"),
            "retransmissions": (leader.switch_rep.qp.retransmissions
                                if leader.switch_rep is not None
                                and leader.switch_rep.qp is not None else 0),
        }
    finally:
        fastlane.enable()


def _assert_identical(fused, plain):
    assert fused["digest"] == plain["digest"]
    assert fused["commits"] == plain["commits"]
    assert fused["events"] == plain["events"]


def _leader_link_fault(cluster, leader, planner, probe):
    """Cut the leader's primary cable pre-quorum; heal before lease loss.

    The lost scatter writes heal via the leader's RDMA-timeout go-back-N
    on the unchanged broadcast QP, so fusion can re-engage in-window
    (a replica-side cut would instead degrade the leader to direct mode
    behind a 40 ms switch-group rebuild).
    """
    schedule = FaultSchedule(cluster)
    schedule.at_ns(0.1 * MS).partition_host(leader.node_id, False)
    schedule.at_ns(0.25 * MS).heal_host(leader.node_id)
    schedule.arm()
    cluster.sim.schedule(
        0.25 * MS,
        lambda: probe.__setitem__("fused_at_heal", planner.flights_fused))


def _replica_crash_fault(cluster, leader, planner, probe):
    """Crash a follower mid-run (its cable dies with it)."""
    victim = next(h.node_id for h in cluster.hosts
                  if h.node_id != leader.node_id)
    schedule = FaultSchedule(cluster)
    schedule.at_ns(0.1 * MS).crash_host(victim)
    schedule.arm()


def test_clean_run_fuses_and_matches_unfused_digest():
    fused = _run(fusion_on=True)
    plain = _run(fusion_on=False)
    assert fused["flights_fused"] > 0
    assert fused["defusions"] == 0
    _assert_identical(fused, plain)
    # The unfused lane never touches the planner.
    assert plain["flights_fused"] == 0


def test_link_fault_defuses_then_reengages_after_retransmit():
    fused = _run(fusion_on=True, fault_fn=_leader_link_fault, run_ns=1 * MS)
    plain = _run(fusion_on=False, fault_fn=_leader_link_fault, run_ns=1 * MS)
    # The cut caught fused hops in flight and materialized them...
    assert fused["defusions"] >= 1
    # ...the gap healed through real go-back-N retransmission...
    assert fused["retransmissions"] > 0
    assert plain["retransmissions"] == fused["retransmissions"]
    # ...and fusion re-engaged afterwards instead of staying disabled.
    assert fused["fused_at_heal"] is not None
    assert fused["flights_fused"] > fused["fused_at_heal"]
    _assert_identical(fused, plain)


def test_replica_crash_defuses_and_matches_unfused_digest():
    fused = _run(fusion_on=True, fault_fn=_replica_crash_fault, run_ns=1 * MS)
    plain = _run(fusion_on=False, fault_fn=_replica_crash_fault, run_ns=1 * MS)
    # The broadcast path includes the dead replica's cable, so fusion
    # must stand down for the rest of the run (the armed device never
    # heals); consensus itself continues on the survivor's ACK.
    assert fused["defusions"] >= 1
    assert fused["flights_fused"] > 0
    _assert_identical(fused, plain)


def test_superfusion_batches_clean_window():
    """Lane 11 collapses a clean run into multi-hop batches -- and the
    batched drain's digest matches both the hop-by-hop lane-9 drain and
    the unfused reference."""
    batched = _run(fusion_on=True)
    hop_by_hop = _run(fusion_on=True, superfusion_on=False)
    plain = _run(fusion_on=False)
    assert batched["runs_fused"] > 0
    # Batches actually batch: strictly more hops than runs.
    assert batched["hops_batched"] > batched["runs_fused"]
    # The hop-by-hop drain never counts runs.
    assert hop_by_hop["runs_fused"] == 0
    _assert_identical(batched, hop_by_hop)
    _assert_identical(batched, plain)


def test_mid_window_fault_splits_batch_and_replays_tail():
    """A fault landing inside a fused window must split the batch at the
    boundary and re-materialize the un-executed tail as real events at
    their exact timestamps.

    The digest covers every frame's wire bytes *and* timestamp, so
    equality with the unfused lane proves the replayed tail ran at the
    same instants the slow path would have chosen; ``batch_splits``
    proves the split machinery (not a lucky empty queue) handled it.
    """
    batched = _run(fusion_on=True, fault_fn=_leader_link_fault, run_ns=1 * MS)
    hop_by_hop = _run(fusion_on=True, superfusion_on=False,
                      fault_fn=_leader_link_fault, run_ns=1 * MS)
    plain = _run(fusion_on=False, fault_fn=_leader_link_fault, run_ns=1 * MS)
    assert batched["runs_fused"] > 0
    assert batched["batch_splits"] >= 1
    # Fusion (and with it, batching) re-engaged after the heal.
    assert batched["fused_at_heal"] is not None
    assert batched["flights_fused"] > batched["fused_at_heal"]
    _assert_identical(batched, hop_by_hop)
    _assert_identical(batched, plain)


def test_numrecv_wrap_inside_super_batches():
    """PSN slot reuse under the batched drain: >256 fused flights wrap
    the NumRecv register file while lane 11 is batching runs, with no
    splits and no divergence from the unfused lane."""
    batched = _run(fusion_on=True, run_ns=0.5 * MS)
    plain = _run(fusion_on=False, run_ns=0.5 * MS)
    assert batched["flights_fused"] > _NUMRECV_SLOTS
    assert batched["runs_fused"] > 0
    assert batched["batch_splits"] == 0
    _assert_identical(batched, plain)


def test_numrecv_slot_wrap_keeps_fusing():
    """PSN slot reuse in the gather registers is not an invalidation.

    NumRecv aggregates 256 PSNs per connection (section IV-C); beyond
    256 fused flights the express gather stage reuses slots exactly like
    the real RegisterActions do, so fusion neither disengages nor
    diverges when the PSN wraps past the register file.
    """
    fused = _run(fusion_on=True, run_ns=0.5 * MS)
    plain = _run(fusion_on=False, run_ns=0.5 * MS)
    assert fused["flights_fused"] > _NUMRECV_SLOTS
    assert fused["defusions"] == 0
    _assert_identical(fused, plain)
