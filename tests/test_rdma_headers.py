"""Unit tests for the RoCE header codecs and opcode helpers."""

import pytest

from repro.rdma import (
    Aeth,
    AethCode,
    Bth,
    NakCode,
    Opcode,
    Reth,
    is_positive_ack,
    make_syndrome,
    parse_roce,
    saturate_credits,
    syndrome_code,
    syndrome_value,
)


class TestBth:
    def test_roundtrip(self):
        bth = Bth(Opcode.RDMA_WRITE_ONLY, 0x12345, 0xABCDE, ack_req=True,
                  solicited=True)
        parsed = Bth.unpack(bth.pack())
        assert parsed.opcode is Opcode.RDMA_WRITE_ONLY
        assert parsed.dest_qp == 0x12345
        assert parsed.psn == 0xABCDE
        assert parsed.ack_req and parsed.solicited

    def test_size_is_12(self):
        assert len(Bth(Opcode.ACKNOWLEDGE, 1, 2).pack()) == Bth.SIZE == 12

    def test_psn_and_qpn_masked_to_24_bits(self):
        bth = Bth(Opcode.SEND_ONLY, 0x1FF_FFFF, 0x1FF_FFFF)
        assert bth.dest_qp == 0xFFFFFF
        assert bth.psn == 0xFFFFFF

    def test_ack_req_bit_independent_of_psn(self):
        bth = Bth(Opcode.RDMA_WRITE_LAST, 5, 0xFFFFFF, ack_req=True)
        parsed = Bth.unpack(bth.pack())
        assert parsed.psn == 0xFFFFFF
        assert parsed.ack_req

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            Bth.unpack(b"\x00" * 4)


class TestReth:
    def test_roundtrip(self):
        reth = Reth(0x7F00_0000_1234, 0xDEADBEEF, 1 << 20)
        parsed = Reth.unpack(reth.pack())
        assert parsed.virtual_address == 0x7F00_0000_1234
        assert parsed.r_key == 0xDEADBEEF
        assert parsed.dma_length == 1 << 20

    def test_size_is_16(self):
        assert len(Reth(0, 0, 0).pack()) == Reth.SIZE == 16


class TestAeth:
    def test_roundtrip(self):
        aeth = Aeth(make_syndrome(AethCode.ACK, 13), 0x123456)
        parsed = Aeth.unpack(aeth.pack())
        assert parsed.syndrome == aeth.syndrome
        assert parsed.msn == 0x123456

    def test_size_is_4(self):
        assert len(Aeth(0, 0).pack()) == Aeth.SIZE == 4

    def test_syndrome_range_checked(self):
        with pytest.raises(ValueError):
            Aeth(256, 0)


class TestSyndrome:
    def test_ack_with_credits(self):
        syndrome = make_syndrome(AethCode.ACK, 13)
        assert syndrome_code(syndrome) is AethCode.ACK
        assert syndrome_value(syndrome) == 13
        assert is_positive_ack(syndrome)

    def test_nak_code(self):
        syndrome = make_syndrome(AethCode.NAK, NakCode.REMOTE_ACCESS_ERROR)
        assert syndrome_code(syndrome) is AethCode.NAK
        assert NakCode(syndrome_value(syndrome)) is NakCode.REMOTE_ACCESS_ERROR
        assert not is_positive_ack(syndrome)

    def test_value_must_fit_5_bits(self):
        with pytest.raises(ValueError):
            make_syndrome(AethCode.ACK, 32)

    def test_saturate_credits(self):
        assert saturate_credits(100) == 31
        assert saturate_credits(-3) == 0
        assert saturate_credits(7) == 7


class TestParseRoce:
    def test_write_only_stack(self):
        bth = Bth(Opcode.RDMA_WRITE_ONLY, 5, 9)
        reth = Reth(0x1000, 0xAB, 64)
        data = bth.pack() + reth.pack() + b"p" * 64 + b"\x00" * 4
        pbth, preth, paeth, payload = parse_roce(data)
        assert pbth.opcode is Opcode.RDMA_WRITE_ONLY
        assert preth.dma_length == 64
        assert paeth is None
        assert payload == b"p" * 64

    def test_ack_stack(self):
        bth = Bth(Opcode.ACKNOWLEDGE, 5, 9)
        aeth = Aeth(make_syndrome(AethCode.ACK, 3), 1)
        data = bth.pack() + aeth.pack() + b"\x00" * 4
        pbth, preth, paeth, payload = parse_roce(data)
        assert pbth.opcode is Opcode.ACKNOWLEDGE
        assert preth is None
        assert syndrome_value(paeth.syndrome) == 3
        assert payload == b""

    def test_middle_write_has_no_reth(self):
        bth = Bth(Opcode.RDMA_WRITE_MIDDLE, 5, 9)
        data = bth.pack() + b"q" * 32 + b"\x00" * 4
        pbth, preth, paeth, payload = parse_roce(data)
        assert preth is None and paeth is None
        assert payload == b"q" * 32

    def test_too_short_for_icrc_rejected(self):
        with pytest.raises(ValueError):
            parse_roce(Bth(Opcode.ACKNOWLEDGE, 1, 1).pack()[:-10])

    def test_object_and_bytes_mode_agree(self):
        """The switch parses header objects; prove they match the bytes."""
        bth = Bth(Opcode.RDMA_WRITE_ONLY, 0x77, 0x55, ack_req=True)
        reth = Reth(0x2000, 0xCD, 8)
        wire = bth.pack() + reth.pack() + b"12345678" + b"\x00" * 4
        pbth, preth, _, payload = parse_roce(wire)
        assert pbth.pack() == bth.pack()
        assert preth.pack() == reth.pack()
