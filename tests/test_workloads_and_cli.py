"""Tests for the measurement utilities, experiment drivers and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.workloads import (
    LatencyRecorder,
    ThroughputWindow,
    measure_burst_latency,
    measure_failover,
    measure_goodput,
    measure_latency_at_load,
    percentile,
)

MS = 1_000_000


class TestPercentile:
    def test_empty(self):
        assert percentile([], 50) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0) == 7.0
        assert percentile([7.0], 100) == 7.0

    def test_median_of_pair_interpolates(self):
        assert percentile([10.0, 20.0], 50) == 15.0

    def test_extremes(self):
        data = sorted(float(i) for i in range(101))
        assert percentile(data, 0) == 0.0
        assert percentile(data, 100) == 100.0
        assert percentile(data, 50) == 50.0

    def test_p99(self):
        data = sorted(float(i) for i in range(1, 101))
        assert 99.0 <= percentile(data, 99) <= 100.0


class TestLatencyRecorder:
    def test_summary(self):
        recorder = LatencyRecorder()
        for value in (1000.0, 2000.0, 3000.0):
            recorder.record(value)
        summary = recorder.summary()
        assert summary["count"] == 3
        assert summary["mean_us"] == pytest.approx(2.0)
        assert summary["p50_us"] == pytest.approx(2.0)
        assert summary["max_us"] == pytest.approx(3.0)

    def test_empty_summary(self):
        assert LatencyRecorder().summary()["count"] == 0


class TestThroughputWindow:
    def test_ops_and_goodput(self):
        window = ThroughputWindow()
        window.open(0.0)
        for _ in range(100):
            window.record(1024)
        window.close(1_000_000.0)  # 1 ms
        assert window.ops_per_sec == pytest.approx(100_000.0)
        assert window.goodput_gbytes_per_sec == pytest.approx(0.1024)

    def test_zero_duration_guard(self):
        window = ThroughputWindow()
        window.open(5.0)
        window.close(5.0)
        assert window.ops_per_sec == 0.0


class TestExperimentDrivers:
    def test_measure_goodput_returns_sane_point(self):
        point = measure_goodput("p4ce", 2, 64, warmup_ns=0.5 * MS,
                                window_ns=1 * MS)
        assert point["ops_per_sec"] > 1e6
        assert point["comm_mode"] == "switch"

    def test_measure_latency_unsaturated(self):
        point = measure_latency_at_load("p4ce", 2, 100e3,
                                        warmup_ns=0.5 * MS, window_ns=1 * MS,
                                        drain_ns=0.5 * MS)
        assert not point["saturated"]
        assert 0 < point["p50_us"] < 50

    def test_measure_latency_saturated_mu(self):
        point = measure_latency_at_load("mu", 4, 2e6, warmup_ns=0.5 * MS,
                                        window_ns=1 * MS, drain_ns=1 * MS)
        assert point["saturated"]

    def test_measure_burst(self):
        point = measure_burst_latency("mu", 2, 4, rounds=3)
        assert point["mean_burst_latency_us"] > 0
        assert point["per_op_latency_us"] == pytest.approx(
            point["mean_burst_latency_us"] / 4)

    def test_measure_failover_group_config_mu_is_zero(self):
        assert measure_failover("mu", 2, "group_config")["time_ms"] == 0.0

    def test_measure_failover_unknown_fault(self):
        with pytest.raises(ValueError):
            measure_failover("mu", 2, "meteor")


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["goodput", "--size", "256", "--replicas", "4"])
        assert args.size == 256 and args.replicas == 4

    def test_demo_runs(self, capsys):
        assert main(["demo", "--values", "3", "--replicas", "2",
                     "--protocol", "mu"]) == 0
        out = capsys.readouterr().out
        assert "committed              3 / 3" in out

    def test_rate_runs(self, capsys):
        assert main(["rate", "--protocol", "mu", "--window-ms", "1"]) == 0
        assert "consensus/s" in capsys.readouterr().out

    def test_failover_runs(self, capsys):
        assert main(["failover", "--fault", "leader", "--protocol", "mu"]) == 0
        assert "time_ms" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
