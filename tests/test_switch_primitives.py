"""Unit tests for the Tofino model primitives: ALU, registers, tables,
multicast engine."""

import pytest

from repro.switch import (
    ExactMatchTable,
    MulticastCopy,
    MulticastEngine,
    Register,
    RegisterAccessError,
    RegisterAction,
    TableFullError,
    compare_eq_constant,
    compare_lt_via_underflow,
    identity_hash,
    saturating_increment,
    sub_with_underflow,
    tofino_min,
)


class TestAlu:
    def test_identity_hash_is_identity(self):
        for value in (0, 1, 31, 0xFFFFFFFF):
            assert identity_hash(value) == value

    def test_sub_with_underflow(self):
        result, borrow = sub_with_underflow(5, 3)
        assert (result, borrow) == (2, 0)
        result, borrow = sub_with_underflow(3, 5)
        assert borrow == 1
        assert result == (3 - 5) & 0xFFFFFFFF

    def test_compare_lt_matches_python(self):
        cases = [(0, 0), (1, 2), (2, 1), (31, 31), (0, 31),
                 (0xFFFFFFFF, 0), (0, 0xFFFFFFFF)]
        for a, b in cases:
            assert compare_lt_via_underflow(a, b) == (a < b), (a, b)

    def test_tofino_min_exhaustive_8bit_credits(self):
        """The min-credit computation must agree with real min across the
        whole 5-bit credit domain (and the full 8-bit register width)."""
        for a in range(0, 256, 7):
            for b in range(0, 256, 5):
                assert tofino_min(a, b, width=8) == min(a, b)

    def test_compare_eq_constant(self):
        assert compare_eq_constant(5, 5)
        assert not compare_eq_constant(5, 6)

    def test_saturating_increment(self):
        assert saturating_increment(5) == 6
        assert saturating_increment(0xFFFFFFFF) == 0xFFFFFFFF
        assert saturating_increment(254, width=8) == 255
        assert saturating_increment(255, width=8) == 255


class TestRegister:
    def test_width_wrapping(self):
        reg = Register("r", 4, width=8)
        reg.cp_write(0, 0x1FF)
        assert reg.cp_read(0) == 0xFF

    def test_initial_value(self):
        reg = Register("r", 4, width=8, initial=31)
        assert all(reg.cp_read(i) == 31 for i in range(4))

    def test_register_action_rmw(self):
        reg = Register("r", 4, width=16)
        count = RegisterAction(reg, lambda cur, arg: (cur + 1, cur + 1))
        assert count.execute(2) == 1
        reg.begin_packet(1)
        assert count.execute(2) == 2
        assert reg.cp_read(2) == 2

    def test_single_access_per_packet_enforced(self):
        reg = Register("r", 4)
        action = RegisterAction(reg, lambda cur, arg: (cur, cur))
        reg.begin_packet(1)
        action.execute(0)
        with pytest.raises(RegisterAccessError):
            action.execute(1)
        reg.begin_packet(2)
        action.execute(0)  # a new packet may access again

    def test_control_plane_access_unguarded(self):
        reg = Register("r", 4)
        reg.begin_packet(1)
        RegisterAction(reg, lambda cur, arg: (cur, cur)).execute(0)
        reg.cp_write(0, 7)  # BfRt path ignores the per-packet guard
        assert reg.cp_read(0) == 7

    def test_index_bounds(self):
        reg = Register("r", 4)
        action = RegisterAction(reg, lambda cur, arg: (cur, cur))
        with pytest.raises(IndexError):
            action.execute(4)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            Register("r", 0)
        with pytest.raises(ValueError):
            Register("r", 4, width=65)


class TestExactMatchTable:
    def test_hit_returns_action_params(self):
        table = ExactMatchTable("t", ("dst_qp",))
        table.add_entry((5,), "forward", port=3)
        entry = table.lookup(5)
        assert entry.action == "forward"
        assert entry.params["port"] == 3

    def test_miss_returns_default(self):
        table = ExactMatchTable("t", ("dst_qp",))
        assert table.lookup(99).action == "NoAction"
        table.set_default("drop")
        assert table.lookup(99).action == "drop"

    def test_hit_miss_counters(self):
        table = ExactMatchTable("t", ("k",))
        table.add_entry((1,), "a")
        table.lookup(1)
        table.lookup(2)
        assert table.hits == 1 and table.misses == 1

    def test_capacity_enforced(self):
        table = ExactMatchTable("t", ("k",), capacity=2)
        table.add_entry((1,), "a")
        table.add_entry((2,), "a")
        with pytest.raises(TableFullError):
            table.add_entry((3,), "a")
        table.add_entry((1,), "b")  # overwriting an entry is fine

    def test_key_arity_checked(self):
        table = ExactMatchTable("t", ("a", "b"))
        with pytest.raises(ValueError):
            table.lookup(1)
        with pytest.raises(ValueError):
            table.add_entry((1,), "x")

    def test_del_entry(self):
        table = ExactMatchTable("t", ("k",))
        table.add_entry((1,), "a")
        assert table.del_entry((1,)) is True
        assert table.del_entry((1,)) is False
        assert table.lookup(1).action == "NoAction"


class TestMulticastEngine:
    def test_group_roundtrip(self):
        engine = MulticastEngine()
        engine.create_group(7, [MulticastCopy(1, 10), MulticastCopy(2, 11)])
        copies = engine.lookup(7)
        assert [(c.egress_port, c.replication_id) for c in copies] == \
            [(1, 10), (2, 11)]

    def test_unknown_group_is_none(self):
        assert MulticastEngine().lookup(1) is None

    def test_update_group(self):
        engine = MulticastEngine()
        engine.create_group(7, [MulticastCopy(1, 10)])
        engine.update_group(7, [MulticastCopy(3, 12)])
        assert engine.lookup(7)[0].egress_port == 3

    def test_update_unknown_raises(self):
        with pytest.raises(KeyError):
            MulticastEngine().update_group(1, [MulticastCopy(0, 0)])

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            MulticastEngine().create_group(1, [])

    def test_delete_group(self):
        engine = MulticastEngine()
        engine.create_group(7, [MulticastCopy(1, 10)])
        engine.delete_group(7)
        assert 7 not in engine


class TestLpmTable:
    def _table(self):
        from repro.switch import LpmTable
        from repro.net import Ipv4Address
        table = LpmTable("routes")
        table.add_route(Ipv4Address.parse("10.0.0.0").value, 24, "subnet")
        table.add_route(Ipv4Address.parse("10.0.0.7").value, 32, "host")
        table.add_route(Ipv4Address.parse("10.0.0.0").value, 8, "site")
        return table

    def test_longest_prefix_wins(self):
        from repro.net import Ipv4Address
        table = self._table()
        assert table.lookup(Ipv4Address.parse("10.0.0.7").value).action == "host"
        assert table.lookup(Ipv4Address.parse("10.0.0.9").value).action == "subnet"
        assert table.lookup(Ipv4Address.parse("10.5.5.5").value).action == "site"

    def test_miss_returns_default(self):
        from repro.net import Ipv4Address
        table = self._table()
        assert table.lookup(Ipv4Address.parse("192.168.0.1").value).action == "NoAction"
        table.set_default("drop")
        assert table.lookup(Ipv4Address.parse("192.168.0.1").value).action == "drop"

    def test_zero_length_prefix_matches_everything(self):
        from repro.switch import LpmTable
        table = LpmTable("r")
        table.add_route(0, 0, "catchall")
        assert table.lookup(0xFFFFFFFF).action == "catchall"

    def test_capacity(self):
        import pytest
        from repro.switch import LpmTable, TableFullError
        table = LpmTable("r", capacity=2)
        table.add_route(1 << 24, 8, "a")
        table.add_route(2 << 24, 8, "a")
        with pytest.raises(TableFullError):
            table.add_route(3 << 24, 8, "a")
        table.add_route(1 << 24, 8, "b")  # overwrite is fine

    def test_delete(self):
        from repro.net import Ipv4Address
        table = self._table()
        ip = Ipv4Address.parse("10.0.0.7").value
        assert table.del_route(ip, 32)
        assert not table.del_route(ip, 32)
        assert table.lookup(ip).action == "subnet"

    def test_bad_prefix_length(self):
        import pytest
        from repro.switch import LpmTable
        with pytest.raises(ValueError):
            LpmTable("r").add_route(0, 33, "a")
