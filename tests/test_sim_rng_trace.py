"""Unit tests for the seeded RNG and the tracer."""

from repro.sim import SeededRng, Simulator, TraceRecord, Tracer


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(42)
        b = SeededRng(42)
        assert [a.u32() for _ in range(10)] == [b.u32() for _ in range(10)]

    def test_different_seeds_diverge(self):
        a = SeededRng(1)
        b = SeededRng(2)
        assert [a.u32() for _ in range(10)] != [b.u32() for _ in range(10)]

    def test_fork_is_deterministic(self):
        a = SeededRng(42).fork("nic")
        b = SeededRng(42).fork("nic")
        assert a.u32() == b.u32()

    def test_fork_labels_independent(self):
        root = SeededRng(42)
        assert root.fork("nic").u32() != root.fork("mem").u32()

    def test_fork_isolated_from_parent_consumption(self):
        r1 = SeededRng(42)
        r1.u32()
        r1.u32()
        r2 = SeededRng(42)
        assert r1.fork("x").u32() == r2.fork("x").u32()

    def test_u24_range(self):
        rng = SeededRng(7)
        for _ in range(100):
            value = rng.u24()
            assert 0 <= value < (1 << 24)

    def test_chance_extremes(self):
        rng = SeededRng(7)
        assert rng.chance(0.0) is False
        assert rng.chance(1.0) is True

    def test_chance_probability_roughly_respected(self):
        rng = SeededRng(7)
        hits = sum(rng.chance(0.3) for _ in range(10_000))
        assert 2_700 < hits < 3_300

    def test_bytes(self):
        rng = SeededRng(7)
        assert len(rng.bytes(16)) == 16
        assert rng.bytes(0) == b""


class TestTracer:
    def test_disabled_by_default_records_nothing(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.record("nic", "tx", psn=1)
        assert tracer.records == []

    def test_enabled_records_with_time(self):
        sim = Simulator()
        tracer = Tracer(sim, enabled=True)
        sim.schedule(100, tracer.record, "nic", "tx")
        sim.run()
        assert len(tracer.records) == 1
        assert tracer.records[0].time == 100

    def test_filter_by_component_and_event(self):
        sim = Simulator()
        tracer = Tracer(sim, enabled=True)
        tracer.record("nic", "tx")
        tracer.record("nic", "rx")
        tracer.record("switch", "tx")
        assert tracer.count("nic") == 2
        assert tracer.count(event="tx") == 2
        assert tracer.count("nic", "rx") == 1

    def test_sink_called_live(self):
        sim = Simulator()
        seen = []
        tracer = Tracer(sim, enabled=True, sink=seen.append)
        tracer.record("a", "b")
        assert len(seen) == 1
        assert isinstance(seen[0], TraceRecord)

    def test_record_str_is_readable(self):
        sim = Simulator()
        tracer = Tracer(sim, enabled=True)
        tracer.record("nic", "tx", psn=5)
        assert "psn=5" in str(tracer.records[0])
