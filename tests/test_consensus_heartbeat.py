"""Heartbeat/liveness tests on small clusters."""

import pytest

from repro import Cluster, ClusterConfig

MS = 1_000_000
US = 1_000


def make(**kw):
    kw.setdefault("seed", 3)
    kw.setdefault("protocol", "mu")
    kw.setdefault("num_replicas", 2)
    cluster = Cluster.build(ClusterConfig(**kw))
    cluster.await_ready()
    return cluster


class TestLiveness:
    def test_everyone_sees_everyone_alive(self):
        cluster = make()
        cluster.run_for(2 * MS)
        for member in cluster.members.values():
            assert member.hb.alive_ids() == [0, 1, 2]

    def test_counters_progress(self):
        cluster = make()
        cluster.run_for(2 * MS)
        for member in cluster.members.values():
            for peer in member.hb.peers.values():
                assert peer.last_counter > 0
                assert peer.ever_seen

    def test_app_kill_detected_within_miss_limit(self):
        cluster = make()
        cluster.run_for(2 * MS)
        cluster.kill_app(2)
        t0 = cluster.sim.now
        observer = cluster.members[0]
        ok = cluster.sim.run_until(lambda: not observer.hb.is_alive(2),
                                   timeout=5 * MS)
        assert ok
        detection = cluster.sim.now - t0
        config = cluster.config
        budget = (config.heartbeat_miss_limit + 2) * config.heartbeat_period_ns
        assert detection <= budget

    def test_dead_nic_still_answers_reads_but_counter_stalls(self):
        """Killing the app (not the host) leaves one-sided reads working;
        liveness must come from counter progress (section V-E)."""
        cluster = make()
        cluster.run_for(2 * MS)
        cluster.kill_app(2)
        cluster.run_for(1 * MS)  # drain any read that was in flight
        observer = cluster.members[0].hb
        stalled_at = observer.peers[2].last_counter
        cluster.run_for(2 * MS)
        # Reads still succeed (paths not failed) ...
        assert all(not path.failed
                   for path in observer.peers[2].paths)
        # ... but the counter no longer moves.
        assert observer.peers[2].last_counter == stalled_at
        assert not observer.is_alive(2)

    def test_host_crash_fails_paths(self):
        cluster = make()
        cluster.run_for(2 * MS)
        cluster.crash_host(2)
        cluster.run_for(5 * MS)
        assert not cluster.members[0].hb.is_alive(2)

    def test_descriptor_propagates(self):
        cluster = make()
        done = []
        for i in range(5):
            cluster.propose(b"x" * 40, done.append)
        cluster.run_for(3 * MS)
        leader_desc = cluster.members[0].log.next_offset
        assert leader_desc > 0
        observer = cluster.members[1].hb
        assert observer.descriptor_of(0) == leader_desc

    def test_grant_publication_propagates(self):
        cluster = make()
        cluster.run_for(2 * MS)
        for observer_id in (1, 2):
            hb = cluster.members[observer_id].hb
            # Both replicas publish "granted to node 0".
            other = 3 - observer_id
            assert hb.granted_of(other) == 0

    def test_read_once_returns_fresh_values(self):
        cluster = make()
        cluster.run_for(2 * MS)
        got = {}
        cluster.members[1].hb.read_once(
            0, lambda hb, desc, epoch: got.update(hb=hb, desc=desc, epoch=epoch))
        cluster.run_for(1 * MS)
        assert got["hb"] > 0
        assert got["epoch"] == cluster.members[0].epoch

    def test_heartbeats_survive_busy_cpu(self):
        """The heartbeat core is dedicated: a long application job on the
        leader must not make it look dead."""
        cluster = make()
        cluster.run_for(1 * MS)
        cluster.members[0].host.cpu.execute(20 * MS, lambda: None)
        cluster.run_for(10 * MS)
        assert cluster.members[1].hb.is_alive(0)

    def test_backup_route_keeps_liveness_through_switch_crash(self):
        cluster = make()
        cluster.run_for(2 * MS)
        cluster.crash_switch()
        cluster.run_for(10 * MS)
        for member in cluster.members.values():
            others = [n for n in range(3) if n != member.node_id]
            for other in others:
                assert member.hb.is_alive(other)

    def test_no_backup_network_switch_crash_kills_liveness(self):
        cluster = make(backup_network=False)
        cluster.run_for(2 * MS)
        cluster.crash_switch()
        cluster.run_for(10 * MS)
        assert not cluster.members[0].hb.is_alive(1)
