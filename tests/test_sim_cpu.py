"""Unit tests for the single-core CPU occupancy model."""

from repro.sim import Cpu, Simulator


def test_jobs_serialize_fifo():
    sim = Simulator()
    cpu = Cpu(sim)
    done = []
    cpu.execute(100, lambda: done.append(("a", sim.now)))
    cpu.execute(50, lambda: done.append(("b", sim.now)))
    sim.run()
    assert done == [("a", 100), ("b", 150)]


def test_busy_until_horizon():
    sim = Simulator()
    cpu = Cpu(sim)
    finish = cpu.execute(100)
    assert finish == 100
    assert cpu.busy_until == 100
    finish2 = cpu.execute(10)
    assert finish2 == 110


def test_idle_cpu_starts_job_now():
    sim = Simulator()
    cpu = Cpu(sim)
    cpu.execute(10, lambda: None)
    sim.run()
    assert sim.now == 10
    assert cpu.idle
    finish = cpu.execute(5)
    assert finish == 15


def test_zero_duration_job_waits_for_queue():
    sim = Simulator()
    cpu = Cpu(sim)
    done = []
    cpu.execute(100, lambda: done.append(sim.now))
    cpu.execute(0, lambda: done.append(sim.now))
    sim.run()
    assert done == [100, 100]


def test_negative_duration_rejected():
    import pytest
    sim = Simulator()
    cpu = Cpu(sim)
    with pytest.raises(ValueError):
        cpu.execute(-1)


def test_busy_time_accounting():
    sim = Simulator()
    cpu = Cpu(sim)
    cpu.execute(100)
    cpu.execute(200)
    sim.run()
    assert cpu.busy_time == 300
    assert cpu.jobs_run == 2


def test_utilization():
    sim = Simulator()
    cpu = Cpu(sim)
    cpu.execute(100, lambda: None)
    sim.run()
    sim.schedule(100, lambda: None)
    sim.run()
    assert sim.now == 200
    assert abs(cpu.utilization(since=0) - 0.5) < 1e-9


def test_callback_args_passed():
    sim = Simulator()
    cpu = Cpu(sim)
    seen = []
    cpu.execute(10, lambda a, b: seen.append((a, b)), 1, 2)
    sim.run()
    assert seen == [(1, 2)]


def test_saturation_models_queueing_delay():
    """Jobs submitted faster than service rate queue up linearly --
    the mechanism behind Fig. 6's hockey stick."""
    sim = Simulator()
    cpu = Cpu(sim)
    finish_times = [cpu.execute(100) for _ in range(10)]
    assert finish_times == [100 * (i + 1) for i in range(10)]
