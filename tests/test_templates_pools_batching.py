"""Fast-lane structure tests: rewrite templates, packet pools, batching.

Three properties the ``repro.fastlane`` machinery must uphold:

* **Template equivalence** -- a packet emitted by patching a pre-rendered
  wire template carries exactly the bytes (and ICRC) that fully packing
  its header objects produces, for randomized rewrite fields;
* **Pool safety** -- recycled fan-out shells are never handed out while
  alive, and recycling never aliases a live packet's state;
* **Batched delivery** -- bucketing same-timestamp events changes heap
  shape only: callback order and timestamps are identical with the lane
  on or off, including the multi-bucket-per-timestamp case.
"""

import random

import pytest

from repro import fastlane, params
from repro.net import (
    EthernetHeader,
    Ipv4Address,
    Ipv4Header,
    MacAddress,
    Packet,
    UdpHeader,
)
from repro.net.packet import _PACKET_POOL
from repro.rdma import wiretemplate
from repro.rdma.headers import Aeth, AtomicEth, Bth, parse_roce, Reth
from repro.rdma.icrc import compute_icrc
from repro.rdma.opcodes import Opcode
from repro.sim import Simulator


@pytest.fixture(autouse=True)
def _fastlane_on():
    """Tests toggle lanes; always leave the process fully enabled."""
    fastlane.enable()
    yield
    fastlane.enable()


def _assert_template_matches_full_pack(pkt):
    """The patched wire image and stamped ICRC must equal a from-scratch
    serialization of the very header objects the rewrite installed."""
    wire_fast = pkt.pack()
    icrc_fast = pkt.meta["icrc"]
    pkt._wire = None  # drop the template image; pack() re-serializes
    assert pkt.pack() == wire_fast
    pkt._icrc_state = None  # drop the cache; recompute the slow way
    fastlane.flags.incremental_icrc = False
    try:
        assert compute_icrc(pkt) == icrc_fast
    finally:
        fastlane.flags.incremental_icrc = True


class TestScatterTemplateEquivalence:
    def _write_packet(self, rng, payload, flow):
        # ``flow`` holds the (src_port, ttl, identification, solicited)
        # constants of one RoCE flow: they are part of the template
        # fingerprint, so a real flow repeats them while PSN/VA/addresses
        # churn per packet.
        src_port, ttl, ident, solicited = flow
        pkt = Packet(
            EthernetHeader(MacAddress(rng.getrandbits(48)),
                           MacAddress(rng.getrandbits(48))),
            Ipv4Header(Ipv4Address(rng.getrandbits(32)),
                       Ipv4Address(rng.getrandbits(32))),
            UdpHeader(src_port, params.ROCE_UDP_PORT),
            [Bth(Opcode.RDMA_WRITE_ONLY, rng.getrandbits(24),
                 rng.getrandbits(24), ack_req=rng.random() < 0.5,
                 solicited=solicited),
             Reth(rng.getrandbits(48), rng.getrandbits(32), len(payload))],
            payload, has_icrc=True)
        pkt.ipv4.ttl = ttl
        pkt.ipv4.identification = ident
        return pkt.finalize()

    def test_randomized_fields_match_full_pack(self):
        rng = random.Random(0xC0FFEE)
        templates = {}
        src_mac = MacAddress(rng.getrandbits(48))
        src_ip = Ipv4Address(rng.getrandbits(32))
        payload = bytes(rng.getrandbits(8) for _ in range(48))
        flow = (rng.randrange(1024, 65536), rng.randrange(1, 256),
                rng.getrandbits(16), rng.random() < 0.5)
        # One (group, replica) rewrite: constants of the pair...
        pre = (MacAddress(rng.getrandbits(48)), Ipv4Address(rng.getrandbits(32)),
               rng.randrange(1024, 65536), rng.getrandbits(24),
               rng.getrandbits(24), rng.getrandbits(40), rng.getrandbits(32))
        for round_no in range(32):
            # ...exercised across many per-packet PSNs/VAs so later rounds
            # hit the template built in round one.
            pkt = self._write_packet(rng, payload, flow)
            in_bth, in_reth = pkt.upper
            in_psn, in_va = in_bth.psn, in_reth.virtual_address
            in_ack = in_bth.ack_req
            assert wiretemplate.scatter_rewrite(
                pkt, templates, pre, src_mac, src_ip, stamp=True)
            _assert_template_matches_full_pack(pkt)
            # The patched fields really are the rewritten ones.
            parsed = Packet.parse(pkt.pack())
            bth, reth, _aeth, _body = parse_roce(parsed.payload)
            assert parsed.eth.dst == pre[0] and parsed.eth.src == src_mac
            assert parsed.ipv4.dst == pre[1] and parsed.ipv4.src == src_ip
            assert parsed.udp.dst_port == pre[2]
            assert bth.dest_qp == pre[3]
            assert bth.psn == (in_psn + pre[4]) & 0xFFFFFF
            assert bth.ack_req == in_ack
            assert reth.virtual_address == in_va + pre[5]
            assert reth.r_key == pre[6]
        # Same flow shape throughout: one template, not one per packet.
        assert len(templates) == 1

    def test_gather_rewrite_matches_full_pack(self):
        rng = random.Random(0xACED)
        templates = {}
        src_mac = MacAddress(rng.getrandbits(48))
        src_ip = Ipv4Address(rng.getrandbits(32))
        leader = (MacAddress(rng.getrandbits(48)),
                  Ipv4Address(rng.getrandbits(32)),
                  rng.randrange(1024, 65536), rng.getrandbits(24))
        src_port = rng.randrange(1024, 65536)  # flow constant (fingerprinted)
        for round_no in range(32):
            pkt = Packet(
                EthernetHeader(MacAddress(rng.getrandbits(48)),
                               MacAddress(rng.getrandbits(48))),
                Ipv4Header(Ipv4Address(rng.getrandbits(32)),
                           Ipv4Address(rng.getrandbits(32))),
                UdpHeader(src_port, params.ROCE_UDP_PORT),
                [Bth(Opcode.ACKNOWLEDGE, rng.getrandbits(24),
                     rng.getrandbits(24)),
                 Aeth(rng.getrandbits(8), rng.getrandbits(24))],
                b"", has_icrc=True).finalize()
            leader_psn = rng.getrandbits(24)
            syndrome = rng.getrandbits(8)
            msn = pkt.upper[1].msn
            assert wiretemplate.gather_rewrite(
                pkt, templates, leader[0], leader[1], leader[2], leader[3],
                src_mac, src_ip, leader_psn, syndrome, stamp=True)
            _assert_template_matches_full_pack(pkt)
            parsed = Packet.parse(pkt.pack())
            bth, _reth, aeth, _body = parse_roce(parsed.payload)
            assert parsed.ipv4.dst == leader[1]
            assert bth.dest_qp == leader[3]
            assert bth.psn == leader_psn
            assert aeth.syndrome == syndrome and aeth.msn == msn
        assert len(templates) == 1

    def test_tx_frame_matches_full_pack(self):
        rng = random.Random(7)
        gateway = MacAddress(rng.getrandbits(48))
        src_mac = MacAddress(rng.getrandbits(48))
        src_ip = Ipv4Address(rng.getrandbits(32))
        dst_ip = Ipv4Address(rng.getrandbits(32))
        templates = {}
        stacks = [
            lambda: [Bth(Opcode.RDMA_WRITE_MIDDLE, rng.getrandbits(24),
                         rng.getrandbits(24))],
            lambda: [Bth(Opcode.RDMA_WRITE_ONLY, rng.getrandbits(24),
                         rng.getrandbits(24), ack_req=True),
                     Reth(rng.getrandbits(48), rng.getrandbits(32), 16)],
            lambda: [Bth(Opcode.ACKNOWLEDGE, rng.getrandbits(24),
                         rng.getrandbits(24)),
                     Aeth(rng.getrandbits(8), rng.getrandbits(24))],
        ]
        for round_no in range(24):
            upper = stacks[round_no % len(stacks)]()
            payload = bytes(rng.getrandbits(8) for _ in range(16)) \
                if round_no % 3 != 2 else b""
            pkt = wiretemplate.tx_frame(
                templates, gateway, src_mac, src_ip, dst_ip,
                rng.randrange(1024, 65536), params.ROCE_UDP_PORT,
                upper, payload)
            assert pkt is not None
            assert pkt.eth.dst == gateway and pkt.ipv4.dst == dst_ip
            _assert_template_matches_full_pack(pkt)

    def test_ack_frame_matches_tx_frame(self):
        """The pre-rendered ACK path and the generic TX-template path must
        emit byte-identical frames (the responder picks between them)."""
        rng = random.Random(0xFACE)
        gateway = MacAddress(rng.getrandbits(48))
        src_mac = MacAddress(rng.getrandbits(48))
        src_ip = Ipv4Address(rng.getrandbits(32))
        dst_ip = Ipv4Address(rng.getrandbits(32))
        src_port = rng.randrange(1024, 65536)
        dest_qp = rng.getrandbits(24)
        ack_templates, tx_templates = {}, {}
        for _ in range(16):
            psn = rng.getrandbits(24)
            syndrome = rng.getrandbits(8)
            msn = rng.getrandbits(24)
            via_ack = wiretemplate.ack_frame(
                ack_templates, gateway, src_mac, src_ip, dst_ip, src_port,
                params.ROCE_UDP_PORT, dest_qp, psn, syndrome, msn)
            via_tx = wiretemplate.tx_frame(
                tx_templates, gateway, src_mac, src_ip, dst_ip, src_port,
                params.ROCE_UDP_PORT,
                [Bth(Opcode.ACKNOWLEDGE, dest_qp, psn),
                 Aeth(syndrome, msn)], b"")
            assert via_ack.pack() == via_tx.pack()
            assert via_ack.meta["icrc"] == via_tx.meta["icrc"]
            _assert_template_matches_full_pack(via_ack)
        assert list(ack_templates) == ["ack"]

    def test_tx_frame_rejects_uncovered_extensions(self):
        upper = [Bth(Opcode.COMPARE_SWAP, 5, 9),
                 AtomicEth(0x1000, 0xAB, 1, 2)]
        assert wiretemplate.tx_frame(
            {}, MacAddress(1), MacAddress(2), Ipv4Address(3), Ipv4Address(4),
            4711, params.ROCE_UDP_PORT, upper, b"") is None


def _roce_frame(tag):
    return Packet(
        EthernetHeader(MacAddress(0x10), MacAddress(0x20)),
        Ipv4Header(Ipv4Address(0x0A000001), Ipv4Address(0x0A000002)),
        UdpHeader(49152, params.ROCE_UDP_PORT),
        [Bth(Opcode.RDMA_WRITE_ONLY, 0x12, 7), Reth(0x7000, 0xABCD, 8)],
        tag, has_icrc=True).finalize()


class TestPacketPool:
    def setup_method(self):
        _PACKET_POOL.clear()

    def test_live_shells_are_never_handed_out(self):
        src = _roce_frame(b"live-src")
        legs = [src.fanout_copy() for _ in range(64)]
        assert len({id(leg) for leg in legs}) == len(legs)
        assert all(leg._pooled for leg in legs)
        assert not _PACKET_POOL  # nothing released yet: pool stays empty

    def test_release_recycles_shell_without_aliasing(self):
        a = _roce_frame(b"packet-a")
        a_wire = a.pack()
        leg = a.fanout_copy()
        leg.release()
        assert _PACKET_POOL and _PACKET_POOL[-1] is leg
        # The released shell is inert: no header slots, no stale caches.
        assert leg._eth is None and leg._wire is None
        assert not leg._pooled

        b = _roce_frame(b"packet-b")
        b_wire = b.pack()
        leg2 = b.fanout_copy()
        assert leg2 is leg  # the shell was recycled...
        assert leg2.pack() == b_wire  # ...and carries only b's state
        # Writing through the recycled shell must not reach b (or a).
        leg2.ipv4.ttl = 9
        leg2.upper[0].psn = 99
        assert b.pack() == b_wire
        assert a.pack() == a_wire

    def test_double_release_inserts_once(self):
        leg = _roce_frame(b"x").fanout_copy()
        leg.release()
        leg.release()
        assert _PACKET_POOL.count(leg) == 1

    def test_non_pooled_packets_never_enter_the_pool(self):
        pkt = _roce_frame(b"retained")
        pkt.release()
        assert not _PACKET_POOL


def _schedule_pattern(sim):
    """A scheduling pattern covering the batching lane's edge cases:
    same-tick bursts, a later-then-earlier push (which under batching
    opens a *second* bucket at the earlier timestamp), a cancellation
    inside a bucket, and zero-delay events."""
    log = []

    def rec(tag):
        log.append((sim.now, tag))

    for i in range(4):
        sim.schedule(10, rec, f"early-{i}")
    sim.schedule(20, rec, "late")
    # The kernel's last-push memo now points at t=20: these go into a
    # fresh, second bucket at t=10 and must still run in seq order.
    for i in range(4):
        sim.schedule(10, rec, f"early2-{i}")
    sim.schedule(10, rec, "victim").cancel()
    sim.schedule(15, rec, "mid")
    sim.schedule(15, rec, "mid2")
    sim.schedule(0, rec, "now")
    sim.run(until=30)
    assert sim.pending_events == 0
    return log


class TestBatchedDeliveryOrdering:
    def test_event_order_and_timestamps_match_unbatched(self):
        fastlane.enable()  # lanes are sampled at Simulator construction
        batched = _schedule_pattern(Simulator())
        fastlane.disable()
        plain = _schedule_pattern(Simulator())
        assert batched == plain
        assert [t for t, _ in batched] == sorted(t for t, _ in batched)

    def test_link_deliveries_preserve_order_and_timing(self):
        from repro.net.link import Link, Port

        def run_lane(on):
            fastlane.flags.set_all(on)
            sim = Simulator()
            got = []

            class Sink:
                def handle_packet(self, port, packet):
                    got.append((sim.now, bytes(packet.payload)))

            a = Port(Sink(), "a")
            b = Port(Sink(), "b")
            Link(sim, a, b)
            # Back-to-back burst: serialization queues FIFO, so arrival
            # order and per-frame timestamps are fully determined.
            for i in range(8):
                assert a.send(_roce_frame(b"frame-%d" % i))
            sim.run()
            return got

        fast = run_lane(True)
        slow = run_lane(False)
        assert fast == slow
        assert [p for _, p in fast] == [b"frame-%d" % i for i in range(8)]
        times = [t for t, _ in fast]
        assert times == sorted(times) and len(set(times)) == len(times)
