"""Tests for the state-machine replication layer."""

import pytest

from repro import Cluster, ClusterConfig
from repro.smr import BankLedger, Counter, KvStore, ReplicatedService

MS = 1_000_000


def make_service(machine, protocol="p4ce", num_replicas=2, **kw):
    kw.setdefault("seed", 17)
    cluster = Cluster.build(ClusterConfig(num_replicas=num_replicas,
                                          protocol=protocol, **kw))
    cluster.await_ready()
    return cluster, ReplicatedService(cluster, machine)


class TestKvStore:
    def test_set_get_visible_on_all_machines(self):
        cluster, service = make_service(KvStore)
        client = service.new_client()
        client.call(KvStore.set_command("k", b"v1"))
        cluster.run_for(3 * MS)
        for node_id, machine in service.machines.items():
            assert machine.get("k") == b"v1"

    def test_del(self):
        cluster, service = make_service(KvStore)
        client = service.new_client()
        client.call(KvStore.set_command("k", b"v"))
        client.call(KvStore.del_command("k"))
        cluster.run_for(3 * MS)
        assert all(m.get("k") is None for m in service.machines.values())

    def test_cas_results(self):
        cluster, service = make_service(KvStore)
        client = service.new_client()
        outcomes = []
        client.call(KvStore.set_command("k", b"a"), outcomes.append)
        client.call(KvStore.cas_command("k", b"a", b"b"), outcomes.append)
        client.call(KvStore.cas_command("k", b"zzz", b"c"), outcomes.append)
        cluster.run_for(3 * MS)
        assert [o.result for o in outcomes] == [True, True, False]
        assert all(m.get("k") == b"b" for m in service.machines.values())

    def test_snapshots_agree_after_mixed_workload(self):
        cluster, service = make_service(KvStore)
        client = service.new_client()
        for i in range(100):
            if i % 7 == 3:
                client.call(KvStore.del_command(f"key{i % 10}"))
            else:
                client.call(KvStore.set_command(f"key{i % 10}", bytes([i])))
        cluster.run_for(5 * MS)
        assert service.snapshots_agree()

    @pytest.mark.parametrize("protocol", ["mu", "p4ce"])
    def test_both_protocols(self, protocol):
        cluster, service = make_service(KvStore, protocol=protocol)
        client = service.new_client()
        client.call(KvStore.set_command("proto", protocol.encode()))
        cluster.run_for(3 * MS)
        assert service.snapshots_agree()
        assert service.machines[1].get("proto") == protocol.encode()


class TestCounter:
    def test_adds_accumulate_in_order(self):
        cluster, service = make_service(Counter)
        client = service.new_client()
        results = []
        for delta in (5, -2, 10):
            client.call(Counter.add_command("c", delta),
                        lambda o: results.append(o.result))
        cluster.run_for(3 * MS)
        assert results == [5, 3, 13]
        assert all(m.value("c") == 13 for m in service.machines.values())


class TestBankLedger:
    def test_transfers_conserve_money(self):
        cluster, service = make_service(BankLedger)
        client = service.new_client()
        client.call(BankLedger.deposit_command("alice", 100))
        client.call(BankLedger.deposit_command("bob", 50))
        for _ in range(10):
            client.call(BankLedger.transfer_command("alice", "bob", 7))
        cluster.run_for(5 * MS)
        for machine in service.machines.values():
            assert machine.total_money == 150
            assert machine.balance("alice") == 30
            assert machine.balance("bob") == 120

    def test_overdraft_rejected_identically_everywhere(self):
        cluster, service = make_service(BankLedger)
        client = service.new_client()
        outcomes = []
        client.call(BankLedger.deposit_command("alice", 10))
        client.call(BankLedger.transfer_command("alice", "bob", 100),
                    outcomes.append)
        cluster.run_for(3 * MS)
        assert outcomes[0].result is False
        for machine in service.machines.values():
            assert machine.rejected == 1
            assert machine.balance("alice") == 10


class TestExactlyOnce:
    def test_duplicate_sequence_applied_once(self):
        cluster, service = make_service(Counter)
        # Submit the same (client, sequence) twice -- as a retry would.
        service.submit(7, 1, Counter.add_command("c", 5))
        service.submit(7, 1, Counter.add_command("c", 5))
        cluster.run_for(3 * MS)
        assert all(m.value("c") == 5 for m in service.machines.values())

    def test_client_survives_leader_failover(self):
        cluster, service = make_service(Counter, num_replicas=2)
        client = service.new_client()
        done = []
        for _ in range(5):
            client.call(Counter.add_command("c", 1),
                        lambda o: done.append(o))
        cluster.run_for(3 * MS)
        assert len(done) == 5
        # Kill the leader mid-burst; the client retries through the view
        # change with the same sequence numbers.
        for _ in range(5):
            client.call(Counter.add_command("c", 1),
                        lambda o: done.append(o))
        cluster.kill_app(0)
        cluster.sim.run_until(lambda: len(done) >= 10, timeout=300 * MS)
        cluster.run_for(5 * MS)
        assert len(done) == 10
        live = [m for m in cluster.members.values()
                if m.role.value != "stopped"]
        for member in live:
            assert service.machines[member.node_id].value("c") == 10

    def test_sequences_are_per_client(self):
        cluster, service = make_service(Counter)
        a, b = service.new_client(), service.new_client()
        a.call(Counter.add_command("c", 1))
        b.call(Counter.add_command("c", 1))
        cluster.run_for(3 * MS)
        assert all(m.value("c") == 2 for m in service.machines.values())


class TestLeaderLease:
    def test_lease_valid_in_steady_state(self):
        cluster, service = make_service(KvStore)
        client = service.new_client()
        client.call(KvStore.set_command("k", b"v"))
        cluster.run_for(3 * MS)
        ok, value = service.linearizable_read(lambda m: m.get("k"))
        assert ok and value == b"v"

    def test_lease_lapses_when_leader_partitioned(self):
        from repro.faults import FaultSchedule
        cluster, service = make_service(KvStore)
        cluster.run_for(2 * MS)
        leader = cluster.leader
        assert leader.can_serve_reads
        FaultSchedule(cluster).injector.partition_host(leader.node_id)
        # Within a heartbeat-miss window the lease is gone -- before any
        # successor can have taken over.
        cluster.run_for(1 * MS)
        assert not leader.can_serve_reads
        ok, _ = service.linearizable_read(lambda m: m.get("k"))
        # Either nobody serves reads yet, or a *new* leader already does;
        # the deposed leader never does.
        if ok:
            assert cluster.leader.node_id != leader.node_id

    def test_new_leader_regains_lease(self):
        cluster, service = make_service(Counter)
        client = service.new_client()
        client.call(Counter.add_command("c", 5))
        cluster.run_for(3 * MS)
        cluster.kill_app(0)
        cluster.sim.run_until(
            lambda: cluster.leader is not None and cluster.leader.node_id == 1,
            timeout=300 * MS)
        cluster.run_for(2 * MS)
        ok, value = service.linearizable_read(lambda m: m.value("c"))
        assert ok and value == 5
