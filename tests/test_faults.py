"""Tests for the fault-injection package and robustness under impairments."""

import json

import pytest

from repro import Cluster, ClusterConfig, fastlane
from repro.faults import FaultInjector, FaultSchedule
from repro.smr import Counter, ReplicatedService
from repro.workloads.experiments import install_trace_digest

MS = 1_000_000


def make(protocol="p4ce", num_replicas=2, **kw):
    kw.setdefault("seed", 23)
    cluster = Cluster.build(ClusterConfig(num_replicas=num_replicas,
                                          protocol=protocol, **kw))
    cluster.await_ready()
    return cluster


class TestSchedule:
    def test_faults_fire_at_scripted_times(self):
        cluster = make()
        schedule = FaultSchedule(cluster)
        schedule.at_ms(2).kill_app(2)
        schedule.at_ms(5).crash_switch()
        schedule.arm()
        start = cluster.sim.now
        cluster.run_for(10 * MS)
        kinds = [(r.kind, round((r.time_ns - start) / MS))
                 for r in schedule.journal]
        assert kinds == [("kill_app", 2), ("crash_switch", 5)]
        assert not cluster.switch_alive()
        assert cluster.members[2].role.value == "stopped"

    def test_cannot_add_after_arm(self):
        cluster = make()
        schedule = FaultSchedule(cluster)
        schedule.arm()
        with pytest.raises(RuntimeError):
            schedule.at_ms(1).kill_app(1)


class TestLinkImpairments:
    def test_lossy_leader_link_still_commits(self):
        cluster = make("mu")
        schedule = FaultSchedule(cluster)
        schedule.injector.set_loss(0, 0.05)
        done = []
        for i in range(30):
            cluster.propose(bytes([i]) * 16, done.append)
        cluster.run_for(80 * MS)
        committed = [e for e in done if e.committed]
        assert len(committed) == 30

    def test_partitioned_replica_detected_dead(self):
        cluster = make("mu")
        schedule = FaultSchedule(cluster)
        schedule.injector.partition_host(2)
        cluster.run_for(5 * MS)
        assert not cluster.members[0].hb.is_alive(2)
        # Still committing with the remaining majority.
        done = []
        cluster.propose(b"x", done.append)
        cluster.run_for(60 * MS)
        assert done and done[0].committed

    def test_healed_replica_becomes_alive_again(self):
        cluster = make("mu")
        injector = FaultSchedule(cluster).injector
        injector.partition_host(2)
        cluster.run_for(5 * MS)
        assert not cluster.members[0].hb.is_alive(2)
        injector.heal_host(2)
        cluster.run_for(5 * MS)
        assert cluster.members[0].hb.is_alive(2)


class TestJournalRecords:
    def test_set_loss_without_backup_nic_journals_noop(self):
        cluster = make(backup_network=False)
        injector = FaultInjector(cluster)
        injector.set_loss(1, 0.5, backup=True)
        rec = injector.journal[-1]
        assert rec.kind == "noop" and not rec.action
        assert rec.target == (1, "set_loss", True)
        # The primary cable is untouched: the miss must not fall through
        # to a different device.
        assert cluster.hosts[1].nic.port.link.drop_probability == 0.0

    def test_partition_and_heal_decompose_into_per_device_actions(self):
        cluster = make()
        injector = FaultInjector(cluster)
        injector.partition_host(2)
        injector.heal_host(2)
        kinds = [(r.kind, r.action) for r in injector.journal]
        assert kinds == [("partition", False), ("cut_link", True),
                         ("cut_link", True), ("heal", False),
                         ("heal_link", True), ("heal_link", True)]
        # Each action names its exact device, so replay touches the same
        # cables in the same order.
        assert [r.args for r in injector.journal if r.action] == [
            (2, False), (2, True), (2, False), (2, True)]

    def test_partition_without_backup_network_journals_the_miss(self):
        cluster = make(backup_network=False)
        injector = FaultInjector(cluster)
        injector.partition_host(2)
        assert [r.kind for r in injector.journal] == [
            "partition", "cut_link", "noop"]

    def test_journal_json_actions_only_round_trips(self):
        cluster = make()
        injector = FaultInjector(cluster)
        injector.partition_host(2)
        injector.heal_host(2)
        records = json.loads(injector.journal_json(actions_only=True))
        assert all(r["action"] for r in records)
        assert [r["kind"] for r in records] == [
            "cut_link", "cut_link", "heal_link", "heal_link"]
        # The full export keeps the annotations the replay form drops.
        full = json.loads(injector.journal_json())
        assert [r["kind"] for r in full if not r["action"]] == [
            "partition", "heal"]


class TestMigrationArms:
    def test_multiple_arms_on_one_ordinal_fire_at_their_offsets(self):
        cluster = make()
        injector = FaultInjector(cluster)
        injector.at_migration(nth=1, offset_ns=1 * MS).kill_app(2)
        injector.at_migration(nth=1, offset_ns=3 * MS).restart_app(2)
        cluster.sim.schedule(2 * MS, injector.migration_started)
        cluster.run_for(30 * MS)
        assert [r.kind for r in injector.journal] == [
            "migration_window", "kill_app", "restart_app"]
        kill, restart = [r for r in injector.journal if r.action]
        assert restart.time_ns - kill.time_ns == pytest.approx(2 * MS)
        assert injector.leftover_migration_arms() == {}
        assert not cluster.members[2]._stopped

    def test_arms_on_never_occurring_ordinal_are_surfaced(self):
        cluster = make()
        injector = FaultInjector(cluster)
        injector.at_migration(nth=3, offset_ns=5 * MS).crash_switch()
        injector.migration_started()  # only ordinal 1 ever opens
        cluster.run_for(10 * MS)
        # The fault never fired -- and the script can see why.
        assert cluster.switch_alive()
        assert injector.leftover_migration_arms() == {
            3: [(5 * MS, "crash_switch")]}


class TestArmedFaultDefusesInsideWindow:
    def _run(self, fast):
        """A cable cut armed inside a 'migration window' under load."""
        fastlane.flags.set_all(fast)
        try:
            cluster = make(seed=91)
            digest = install_trace_digest(cluster)
            injector = FaultInjector(cluster)
            done = []

            def pump(outcome=None):
                if outcome is not None:
                    done.append(outcome)
                if len(done) < 400:
                    cluster.propose(b"v" * 16, pump)

            for _ in range(4):
                pump()
            injector.at_migration(nth=1, offset_ns=int(0.5 * MS)).cut_link(1)
            injector.at_migration(nth=1, offset_ns=6 * MS).heal_link(1)
            cluster.sim.schedule(2 * MS, injector.migration_started)
            cluster.run_for(90 * MS)
            committed = len([e for e in done if e.committed])
            return (digest.hexdigest(), committed,
                    [r.kind for r in injector.journal])
        finally:
            fastlane.enable()

    def test_fast_lanes_defuse_and_match_slow_digest(self):
        fast_digest, fast_commits, kinds = self._run(True)
        assert kinds[:3] == ["migration_window", "cut_link", "heal_link"]
        assert fast_commits > 0
        slow_digest, slow_commits, _ = self._run(False)
        assert fast_digest == slow_digest
        assert fast_commits == slow_commits


class TestEndToEndChaos:
    @pytest.mark.parametrize("protocol", ["mu", "p4ce"])
    def test_service_survives_scripted_mayhem(self, protocol):
        """Replica kill + switch crash + revival under constant load:
        the replicated counter must end exact and identical."""
        cluster = make(protocol, num_replicas=4)
        service = ReplicatedService(cluster, Counter)
        client = service.new_client()
        outcomes = []
        target = 200

        def pump(outcome=None):
            if outcome is not None:
                outcomes.append(outcome)
            if client.calls < target:
                client.call(Counter.add_command("ops", 1), pump)

        for _ in range(4):
            pump()
        schedule = FaultSchedule(cluster)
        schedule.at_ms(1).kill_app(4)
        schedule.at_ms(30).crash_switch()
        schedule.at_ms(120).revive_switch()
        schedule.arm()
        ok = cluster.sim.run_until(lambda: len(outcomes) >= target,
                                   timeout=2_000 * MS)
        assert ok, f"only {len(outcomes)} / {target} commands finished"
        cluster.run_for(10 * MS)
        live = [m for m in cluster.members.values()
                if m.role.value != "stopped"]
        for member in live:
            assert service.machines[member.node_id].value("ops") == target
