"""Tests for the fault-injection package and robustness under impairments."""

import pytest

from repro import Cluster, ClusterConfig
from repro.faults import FaultSchedule
from repro.smr import Counter, ReplicatedService

MS = 1_000_000


def make(protocol="p4ce", num_replicas=2, **kw):
    kw.setdefault("seed", 23)
    cluster = Cluster.build(ClusterConfig(num_replicas=num_replicas,
                                          protocol=protocol, **kw))
    cluster.await_ready()
    return cluster


class TestSchedule:
    def test_faults_fire_at_scripted_times(self):
        cluster = make()
        schedule = FaultSchedule(cluster)
        schedule.at_ms(2).kill_app(2)
        schedule.at_ms(5).crash_switch()
        schedule.arm()
        start = cluster.sim.now
        cluster.run_for(10 * MS)
        kinds = [(r.kind, round((r.time_ns - start) / MS))
                 for r in schedule.journal]
        assert kinds == [("kill_app", 2), ("crash_switch", 5)]
        assert not cluster.switch_alive()
        assert cluster.members[2].role.value == "stopped"

    def test_cannot_add_after_arm(self):
        cluster = make()
        schedule = FaultSchedule(cluster)
        schedule.arm()
        with pytest.raises(RuntimeError):
            schedule.at_ms(1).kill_app(1)


class TestLinkImpairments:
    def test_lossy_leader_link_still_commits(self):
        cluster = make("mu")
        schedule = FaultSchedule(cluster)
        schedule.injector.set_loss(0, 0.05)
        done = []
        for i in range(30):
            cluster.propose(bytes([i]) * 16, done.append)
        cluster.run_for(80 * MS)
        committed = [e for e in done if e.committed]
        assert len(committed) == 30

    def test_partitioned_replica_detected_dead(self):
        cluster = make("mu")
        schedule = FaultSchedule(cluster)
        schedule.injector.partition_host(2)
        cluster.run_for(5 * MS)
        assert not cluster.members[0].hb.is_alive(2)
        # Still committing with the remaining majority.
        done = []
        cluster.propose(b"x", done.append)
        cluster.run_for(60 * MS)
        assert done and done[0].committed

    def test_healed_replica_becomes_alive_again(self):
        cluster = make("mu")
        injector = FaultSchedule(cluster).injector
        injector.partition_host(2)
        cluster.run_for(5 * MS)
        assert not cluster.members[0].hb.is_alive(2)
        injector.heal_host(2)
        cluster.run_for(5 * MS)
        assert cluster.members[0].hb.is_alive(2)


class TestEndToEndChaos:
    @pytest.mark.parametrize("protocol", ["mu", "p4ce"])
    def test_service_survives_scripted_mayhem(self, protocol):
        """Replica kill + switch crash + revival under constant load:
        the replicated counter must end exact and identical."""
        cluster = make(protocol, num_replicas=4)
        service = ReplicatedService(cluster, Counter)
        client = service.new_client()
        outcomes = []
        target = 200

        def pump(outcome=None):
            if outcome is not None:
                outcomes.append(outcome)
            if client.calls < target:
                client.call(Counter.add_command("ops", 1), pump)

        for _ in range(4):
            pump()
        schedule = FaultSchedule(cluster)
        schedule.at_ms(1).kill_app(4)
        schedule.at_ms(30).crash_switch()
        schedule.at_ms(120).revive_switch()
        schedule.arm()
        ok = cluster.sim.run_until(lambda: len(outcomes) >= target,
                                   timeout=2_000 * MS)
        assert ok, f"only {len(outcomes)} / {target} commands finished"
        cluster.run_for(10 * MS)
        live = [m for m in cluster.members.values()
                if m.role.value != "stopped"]
        for member in live:
            assert service.machines[member.node_id].value("ops") == target
