"""Shared fixtures: small rigs used across the test suite."""

from __future__ import annotations

import pytest

from repro.net import AddressAllocator, connect
from repro.rdma import Access, Host, ListenerReply
from repro.sim import Simulator
from repro.switch import L3ForwardProgram, Switch


class TwoHostRig:
    """Two hosts cabled back-to-back (no switch)."""

    def __init__(self):
        self.sim = Simulator()
        alloc = AddressAllocator()
        m1, i1 = alloc.next_host()
        m2, i2 = alloc.next_host()
        self.client = Host(self.sim, "client", 1, m1, i1)
        self.server = Host(self.sim, "server", 2, m2, i2)
        self.link = connect(self.sim, self.client.nic.port, self.server.nic.port)
        self.client.nic.gateway_mac = m2
        self.server.nic.gateway_mac = m1

    def connected_qp_pair(self, service_id=0x10, access=Access.REMOTE_WRITE
                          | Access.REMOTE_READ, region_len=1 << 20):
        """CM-handshake a QP pair; returns (client_qp, client_cq, server_qp,
        server_cq, server_region)."""
        region = self.server.reg_mr(region_len, access, "target")
        server_cq = self.server.create_cq()
        server_qp = self.server.create_qp(server_cq)
        self.server.cm.listen(
            service_id, lambda info: ListenerReply(qp=server_qp))
        client_cq = self.client.create_cq()
        client_qp = self.client.create_qp(client_cq)
        result = {}
        self.client.cm.connect(self.server.ip, service_id, client_qp, b"",
                               lambda qp, pd, err: result.update(err=err))
        self.sim.run(until=self.sim.now + 1_000_000)
        assert result.get("err") is None, result
        return client_qp, client_cq, server_qp, server_cq, region


class StarRig:
    """Hosts around an L3-forwarding switch."""

    def __init__(self, num_hosts=3):
        self.sim = Simulator()
        alloc = AddressAllocator()
        smac, sip = alloc.switch_address()
        self.switch = Switch(self.sim, "sw", smac, sip)
        self.switch.load_program(L3ForwardProgram())
        self.hosts = []
        for i in range(num_hosts):
            mac, ip = alloc.next_host()
            host = Host(self.sim, f"h{i}", i, mac, ip)
            port = self.switch.free_port()
            connect(self.sim, host.nic.port, port)
            host.nic.gateway_mac = smac
            self.switch.add_host_route(ip, port.index, mac)
            self.hosts.append(host)


@pytest.fixture
def two_hosts():
    return TwoHostRig()


@pytest.fixture
def star3():
    return StarRig(3)
